"""Tests for the benchmark harness machinery and experiment registry."""

import importlib.util
import json
import pathlib

import pytest

from repro.bench.figures import EXPERIMENTS, run_experiment
from repro.bench.harness import (
    Claim,
    ExperimentResult,
    Series,
    geometric_sizes,
    paper_scale,
)

_RUN_ALL = pathlib.Path(__file__).parent.parent / "benchmarks" / "run_all.py"


def _load_run_all():
    spec = importlib.util.spec_from_file_location("run_all", _RUN_ALL)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestSeriesAndClaims:
    def test_series_at(self):
        s = Series("x", [8, 16, 32], [1.0, 2.0, 3.0])
        assert s.at(16) == 2.0
        with pytest.raises(ValueError):
            s.at(64)

    def test_claim_render_marks(self):
        assert "PASS" in Claim("ok", True).render()
        assert "FAIL" in Claim("bad", False, "why").render()
        assert "why" in Claim("bad", False, "why").render()

    def test_result_claim_tracking(self):
        r = ExperimentResult("x", "t", paper_says="p")
        r.claim("a", True)
        r.claim("b", False, "detail")
        assert not r.all_claims_hold
        assert [c.text for c in r.failed_claims()] == ["b"]

    def test_render_contains_everything(self):
        r = ExperimentResult("figX", "My Title", paper_says="the claim",
                             x_label="message bytes")
        r.series = [Series("curveA", [1024, 2048], [1e-6, 2e-6])]
        r.claim("shape holds", True, "numbers")
        r.extra.append("EXTRA BLOCK")
        r.notes = "a note"
        text = r.render()
        for needle in ("figX", "My Title", "the claim", "curveA", "1K", "2K",
                       "1us", "2us", "PASS", "EXTRA BLOCK", "a note"):
            assert needle in text, needle

    def test_y_formatting_kinds(self):
        r = ExperimentResult("x", "t", paper_says="p", y_kind="bandwidth")
        assert r._fmt_y(2.5e9) == "2500MB/s"
        r.y_kind = "speedup"
        assert r._fmt_y(12.34) == "12.3"
        r.y_kind = "raw"
        assert r._fmt_y(3.14159) == "3.142"
        assert r._fmt_y(float("nan")) == "-"


class TestHelpers:
    def test_geometric_sizes(self):
        assert geometric_sizes(8, 64) == [8, 16, 32, 64]
        assert geometric_sizes(8, 100)[-1] == 100

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not paper_scale()
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale()
        monkeypatch.setenv("REPRO_PAPER_SCALE", "0")
        assert not paper_scale()


class TestRegistry:
    def test_every_paper_exhibit_registered(self):
        for exp_id in ("fig1", "fig4", "fig6", "fig8a", "fig8b", "fig8c",
                       "fig9a", "fig9b", "fig9c", "fig10", "fig11", "fig12",
                       "fig13", "table1", "table2"):
            assert exp_id in EXPERIMENTS

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_returns_result(self):
        r = run_experiment("ablation_routing")
        assert isinstance(r, ExperimentResult)
        assert r.series
        assert r.render()


class TestRegressionHarness:
    """benchmarks/run_all.py — the perf-smoke harness CI keys off."""

    def test_checksum_is_order_independent_and_full_precision(self):
        ra = _load_run_all()
        a = ra.checksum({"x": 1.0000000000000002, "y": 2.0})
        b = ra.checksum({"y": 2.0, "x": 1.0000000000000002})
        c = ra.checksum({"x": 1.0, "y": 2.0})  # 1 ulp apart from a
        assert a == b
        assert a != c

    def test_run_benchmark_detects_nondeterminism(self, monkeypatch):
        ra = _load_run_all()
        drift = iter(range(100))

        def flaky():
            return {"metric": float(next(drift))}

        monkeypatch.setitem(ra.BENCHMARKS, "flaky", flaky)
        with pytest.raises(RuntimeError, match="deterministic"):
            ra.run_benchmark("flaky", rounds=3)

    def test_run_benchmark_shape(self, monkeypatch):
        ra = _load_run_all()
        monkeypatch.setitem(ra.BENCHMARKS, "fast", lambda: {"m": 1.5})
        entry = ra.run_benchmark("fast", rounds=3)
        assert len(entry["wall_s"]) == 3
        assert entry["wall_median_s"] >= 0
        assert entry["sim"] == {"m": 1.5}
        assert entry["checksum"].startswith("sha256:")

    def test_compare_flags_slowdown_and_drift(self):
        ra = _load_run_all()
        base = {"schema": ra.SCHEMA, "benchmarks": {
            "b": {"normalized": 1.0, "checksum": "sha256:aaa"}}}
        same = {"schema": ra.SCHEMA, "benchmarks": {
            "b": {"normalized": 1.1, "checksum": "sha256:aaa"}}}
        slow = {"schema": ra.SCHEMA, "benchmarks": {
            "b": {"normalized": 1.5, "checksum": "sha256:aaa"}}}
        drift = {"schema": ra.SCHEMA, "benchmarks": {
            "b": {"normalized": 1.0, "checksum": "sha256:bbb"}}}
        assert ra.compare(same, base, tolerance=0.20) == []
        assert any("1.50x" in f for f in ra.compare(slow, base, tolerance=0.20))
        assert any("checksum drifted" in f
                   for f in ra.compare(drift, base, tolerance=0.20))
        missing = {"schema": ra.SCHEMA, "benchmarks": {}}
        assert any("missing" in f for f in ra.compare(missing, base, 0.2))

    def test_compare_rejects_schema_mismatch(self):
        ra = _load_run_all()
        cur = {"schema": ra.SCHEMA, "benchmarks": {}}
        old = {"schema": "repro-bench-v0", "benchmarks": {}}
        fails = ra.compare(cur, old, tolerance=0.20)
        assert fails and "schema mismatch" in fails[0]

    def test_committed_baseline_parses_and_matches_schema(self):
        ra = _load_run_all()
        path = _RUN_ALL.parent / "BENCH_baseline.json"
        base = json.loads(path.read_text())
        assert base["schema"] == ra.SCHEMA
        for name in ("pingpong", "kneighbor", "engine_events"):
            entry = base["benchmarks"][name]
            assert entry["checksum"].startswith("sha256:")
            assert entry["normalized"] > 0
            assert entry["sim"]
