"""Tests for the benchmark harness machinery and experiment registry."""

import pytest

from repro.bench.figures import EXPERIMENTS, run_experiment
from repro.bench.harness import (
    Claim,
    ExperimentResult,
    Series,
    geometric_sizes,
    paper_scale,
)


class TestSeriesAndClaims:
    def test_series_at(self):
        s = Series("x", [8, 16, 32], [1.0, 2.0, 3.0])
        assert s.at(16) == 2.0
        with pytest.raises(ValueError):
            s.at(64)

    def test_claim_render_marks(self):
        assert "PASS" in Claim("ok", True).render()
        assert "FAIL" in Claim("bad", False, "why").render()
        assert "why" in Claim("bad", False, "why").render()

    def test_result_claim_tracking(self):
        r = ExperimentResult("x", "t", paper_says="p")
        r.claim("a", True)
        r.claim("b", False, "detail")
        assert not r.all_claims_hold
        assert [c.text for c in r.failed_claims()] == ["b"]

    def test_render_contains_everything(self):
        r = ExperimentResult("figX", "My Title", paper_says="the claim",
                             x_label="message bytes")
        r.series = [Series("curveA", [1024, 2048], [1e-6, 2e-6])]
        r.claim("shape holds", True, "numbers")
        r.extra.append("EXTRA BLOCK")
        r.notes = "a note"
        text = r.render()
        for needle in ("figX", "My Title", "the claim", "curveA", "1K", "2K",
                       "1us", "2us", "PASS", "EXTRA BLOCK", "a note"):
            assert needle in text, needle

    def test_y_formatting_kinds(self):
        r = ExperimentResult("x", "t", paper_says="p", y_kind="bandwidth")
        assert r._fmt_y(2.5e9) == "2500MB/s"
        r.y_kind = "speedup"
        assert r._fmt_y(12.34) == "12.3"
        r.y_kind = "raw"
        assert r._fmt_y(3.14159) == "3.142"
        assert r._fmt_y(float("nan")) == "-"


class TestHelpers:
    def test_geometric_sizes(self):
        assert geometric_sizes(8, 64) == [8, 16, 32, 64]
        assert geometric_sizes(8, 100)[-1] == 100

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not paper_scale()
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale()
        monkeypatch.setenv("REPRO_PAPER_SCALE", "0")
        assert not paper_scale()


class TestRegistry:
    def test_every_paper_exhibit_registered(self):
        for exp_id in ("fig1", "fig4", "fig6", "fig8a", "fig8b", "fig8c",
                       "fig9a", "fig9b", "fig9c", "fig10", "fig11", "fig12",
                       "fig13", "table1", "table2"):
            assert exp_id in EXPERIMENTS

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_returns_result(self):
        r = run_experiment("ablation_routing")
        assert isinstance(r, ExperimentResult)
        assert r.series
        assert r.render()
