"""Tests for the N-Queens solver, work model, and Charm application."""

import numpy as np
import pytest

from repro.apps.nqueens import (
    KNOWN_SOLUTIONS,
    build_task_tree,
    count_solutions,
    estimate_subtree_nodes,
    run_nqueens,
    solve_subtree,
    valid_prefixes,
)
from repro.apps.nqueens.solver import ROOT, expand
from repro.hardware.config import tiny as tiny_config


class TestSolver:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
    def test_exact_counts_match_published(self, n):
        assert count_solutions(n) == KNOWN_SOLUTIONS[n]

    def test_twelve_queens(self):
        assert count_solutions(12) == 14200

    def test_expand_respects_constraints(self):
        """Brute-force check: expansions never attack each other."""
        n = 6

        def to_columns(path):
            # reconstruct column choices by replaying
            return path

        # DFS collecting full placements via expand
        placements = []

        def dfs(state, cols_so_far):
            if state[3] == n:
                placements.append(cols_so_far)
                return
            for child in expand(n, state):
                new_col = (child[0] ^ state[0]).bit_length() - 1
                dfs(child, cols_so_far + [new_col])

        dfs(ROOT, [])
        assert len(placements) == KNOWN_SOLUTIONS[n]
        for p in placements:
            assert len(set(p)) == n  # distinct columns
            for i in range(n):
                for j in range(i + 1, n):
                    assert abs(p[i] - p[j]) != j - i  # no diagonal attacks

    def test_subtree_nodes_positive_and_consistent(self):
        nodes, sols = solve_subtree(8, ROOT)
        assert sols == 92
        assert nodes > sols  # internal nodes exist

    def test_valid_prefix_counts(self):
        # depth 1 always has n prefixes
        assert len(valid_prefixes(9, 1)) == 9
        # depth n prefixes are exactly the solutions
        assert len(valid_prefixes(7, 7)) == KNOWN_SOLUTIONS[7]

    def test_prefixes_shrink_ratio(self):
        deep = len(valid_prefixes(10, 5))
        shallow = len(valid_prefixes(10, 2))
        assert deep > shallow

    def test_estimator_unbiasedness(self):
        """Knuth estimator averaged over many probes ≈ exact node count."""
        n = 9
        exact_nodes, _ = solve_subtree(n, ROOT)
        rng = np.random.default_rng(7)
        est = estimate_subtree_nodes(n, ROOT, rng, probes=3000)
        assert est == pytest.approx(exact_nodes, rel=0.15)

    def test_estimator_deterministic_given_rng(self):
        a = estimate_subtree_nodes(10, ROOT, np.random.default_rng(3), probes=8)
        b = estimate_subtree_nodes(10, ROOT, np.random.default_rng(3), probes=8)
        assert a == b


class TestWorkModel:
    def test_exact_tree_totals(self):
        tree = build_task_tree(8, 3, mode="exact")
        assert tree.solutions == 92
        # leaf tasks = valid prefixes at threshold depth
        assert tree.n_leaf_tasks == len(valid_prefixes(8, 3))
        # expansion tasks = prefixes above the threshold
        assert tree.expansion_counts == [1, 8, len(valid_prefixes(8, 2))]

    def test_task_count_grows_with_threshold(self):
        t5 = build_task_tree(10, 5, mode="exact")
        t3 = build_task_tree(10, 3, mode="exact")
        assert t5.n_tasks > t3.n_tasks
        # and the mean grain shrinks
        assert t5.mean_leaf_grain() < t3.mean_leaf_grain()

    def test_estimate_mode_close_to_exact_total(self):
        exact = build_task_tree(11, 4, mode="exact")
        est = build_task_tree(11, 4, mode="estimate", probes=32, seed=5)
        assert est.total_leaf_work == pytest.approx(exact.total_leaf_work,
                                                    rel=0.25)
        assert est.solutions is None

    def test_serial_time_includes_expansions(self):
        tree = build_task_tree(8, 3, mode="exact")
        assert tree.serial_time > tree.total_leaf_work

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            build_task_tree(8, 0)
        with pytest.raises(ValueError):
            build_task_tree(8, 8)


class TestApp:
    def _run(self, layer="ugni", n_pes=8, n=8, threshold=3, **kw):
        return run_nqueens(n, threshold, n_pes, layer=layer,
                           config=tiny_config(), mode="exact", **kw)

    def test_all_tasks_execute_exactly_once(self):
        from repro.apps.nqueens.workmodel import paper_threshold_to_depth

        res = self._run()
        # run_nqueens maps the nominal threshold to a spawn depth
        tree = build_task_tree(8, paper_threshold_to_depth(3),
                               mode="exact", seed=1)
        assert res.n_tasks == tree.n_tasks
        # the run itself already asserts conservation internally
        assert res.messages_sent >= res.n_tasks - 1

    def test_speedup_with_more_pes(self):
        t4 = self._run(n_pes=4, n=10, threshold=4).total_time
        t16 = self._run(n_pes=16, n=10, threshold=4).total_time
        assert t16 < t4

    def test_ugni_faster_than_mpi_at_scale(self):
        """The Fig 11 direction: fine-grain tasks favour the uGNI layer."""
        r_ugni = self._run(layer="ugni", n_pes=16, n=10, threshold=5)
        r_mpi = self._run(layer="mpi", n_pes=16, n=10, threshold=5)
        assert r_ugni.total_time < r_mpi.total_time

    def test_overhead_fraction_higher_on_mpi(self):
        r_ugni = self._run(layer="ugni", n_pes=16, n=10, threshold=5)
        r_mpi = self._run(layer="mpi", n_pes=16, n=10, threshold=5)
        assert r_mpi.utilization["overhead"] > r_ugni.utilization["overhead"]

    def test_deterministic_given_seed(self):
        a = self._run(seed=3)
        b = self._run(seed=3)
        assert a.total_time == b.total_time
        assert a.messages_sent == b.messages_sent

    def test_different_seed_different_placement(self):
        a = self._run(seed=3)
        b = self._run(seed=4)
        assert a.total_time != b.total_time

    def test_profile_collection(self):
        res = self._run(trace_bin=1e-4)
        assert res.profile is not None
        s = res.profile.summary()
        assert s["useful"] > 0
        assert abs(sum(s.values()) - 1.0) < 0.25

    def test_speedup_property(self):
        res = self._run(n_pes=8, n=10, threshold=4)
        assert 1.0 < res.speedup <= 8.5
