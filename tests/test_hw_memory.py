"""Tests for the per-node memory allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.hardware.memory import NodeMemory


class TestMalloc:
    def test_basic_alloc_free_roundtrip(self):
        mem = NodeMemory(0, 1 << 20)
        blk = mem.malloc(1000)
        assert blk.size >= 1000
        assert mem.used == blk.size
        mem.free(blk)
        assert mem.used == 0
        mem.check_invariants()

    def test_alignment(self):
        mem = NodeMemory(0, 1 << 20)
        blk = mem.malloc(1)
        assert blk.size == NodeMemory.ALIGN
        assert blk.addr % NodeMemory.ALIGN == 0

    def test_allocations_do_not_overlap(self):
        mem = NodeMemory(0, 1 << 20)
        blocks = [mem.malloc(100 + 7 * i) for i in range(50)]
        spans = sorted((b.addr, b.end) for b in blocks)
        for (a0, e0), (a1, _e1) in zip(spans, spans[1:]):
            assert e0 <= a1
        mem.check_invariants()

    def test_oom_raises(self):
        mem = NodeMemory(0, 1024)
        with pytest.raises(MemoryError_):
            mem.malloc(2048)

    def test_fragmentation_then_coalesce(self):
        mem = NodeMemory(0, 4096)
        blocks = [mem.malloc(512) for _ in range(8)]
        # free every other block: largest hole is 512
        for b in blocks[::2]:
            mem.free(b)
        with pytest.raises(MemoryError_):
            mem.malloc(1024)
        # free the rest: everything coalesces back into one range
        for b in blocks[1::2]:
            mem.free(b)
        assert mem.largest_free_range == 4096
        blk = mem.malloc(4096)
        assert blk.size == 4096
        mem.check_invariants()

    def test_double_free_rejected(self):
        mem = NodeMemory(0, 1 << 16)
        blk = mem.malloc(64)
        mem.free(blk)
        with pytest.raises(MemoryError_):
            mem.free(blk)

    def test_cross_node_free_rejected(self):
        mem0 = NodeMemory(0, 1 << 16)
        mem1 = NodeMemory(1, 1 << 16)
        blk = mem0.malloc(64)
        with pytest.raises(MemoryError_):
            mem1.free(blk)

    def test_non_positive_malloc_rejected(self):
        mem = NodeMemory(0, 1 << 16)
        with pytest.raises(MemoryError_):
            mem.malloc(0)

    def test_block_contains(self):
        mem = NodeMemory(0, 1 << 16)
        blk = mem.malloc(128)
        assert blk.contains(blk.addr)
        assert blk.contains(blk.addr + 100, 28)
        assert not blk.contains(blk.addr + 100, 29)
        assert not blk.contains(blk.addr - 1)


class TestPropertyBased:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(1, 5000), min_size=1, max_size=60),
    )
    def test_used_tracks_live_bytes(self, sizes):
        mem = NodeMemory(0, 1 << 20)
        blocks = [mem.malloc(s) for s in sizes]
        assert mem.used == sum(b.size for b in blocks)
        for b in blocks:
            mem.free(b)
        assert mem.used == 0
        mem.check_invariants()

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 5000)),
                st.tuples(st.just("free"), st.integers(0, 10**6)),
            ),
            max_size=150,
        )
    )
    def test_full_reclaim_after_any_sequence(self, ops):
        mem = NodeMemory(0, 1 << 20)
        live = []
        for op, arg in ops:
            if op == "alloc":
                try:
                    live.append(mem.malloc(arg))
                except MemoryError_:
                    pass
            elif live:
                mem.free(live.pop(arg % len(live)))
            mem.check_invariants()
        for b in live:
            mem.free(b)
        assert mem.used == 0
        assert mem.largest_free_range == mem.capacity
