"""The GPU model: device memory, copy engines, kernel slots, transports.

Covers the three hardware resources (allocator, per-direction DMA
engines, bounded kernel slots), the staged-vs-GPUDirect protocol
crossover end to end through the charm stack, and the contracts the
benchmarks rely on: ``auto`` picks the winner, results are
transport-invariant, and everything replays deterministically.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.gpu_apps import gpu_kneighbor, gpu_pingpong
from repro.errors import HardwareError, MemoryError_, TopologyError
from repro.hardware import Machine
from repro.hardware.config import MachineConfig, tiny as tiny_config
from repro.units import KB, MB

SETTINGS = dict(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def gpu_machine(n_nodes=2, **over):
    over.setdefault("gpus_per_node", 1)
    cfg = tiny_config(cores_per_node=1).replace(**over)
    return Machine(n_nodes=n_nodes, config=cfg, seed=0)


# --------------------------------------------------------------------- #
# device memory
# --------------------------------------------------------------------- #
class TestDeviceMemory:
    def test_no_gpus_by_default(self):
        m = Machine(n_nodes=2, config=tiny_config(cores_per_node=1), seed=0)
        assert m.gpus == []
        with pytest.raises(TopologyError):
            m.gpu_of_pe(0)

    def test_machine_builds_gpus(self):
        m = gpu_machine(n_nodes=2, gpus_per_node=2)
        assert len(m.gpus) == 4
        assert [g.node_id for g in m.gpus] == [0, 0, 1, 1]
        assert m.gpu_of_pe(0) in m.nodes[0].gpus

    def test_alloc_free_roundtrip(self):
        m = gpu_machine()
        gpu = m.gpus[0]
        buf = gpu.alloc(64 * KB)
        assert not buf.freed
        assert gpu.stats()["device_used"] >= 64 * KB
        gpu.free(buf)
        assert buf.freed
        assert gpu.stats()["device_used"] == 0

    def test_oom_raises(self):
        m = gpu_machine(gpus_per_node=1, gpu_memory_bytes=64 * KB)
        with pytest.raises(MemoryError_):
            m.gpus[0].alloc(1 * MB)

    @pytest.mark.sanitize_violations
    def test_double_free_raises(self):
        m = gpu_machine()
        gpu = m.gpus[0]
        buf = gpu.alloc(4 * KB)
        gpu.free(buf)
        with pytest.raises(MemoryError_):
            gpu.free(buf)

    @pytest.mark.sanitize_violations
    def test_foreign_free_raises(self):
        m = gpu_machine(n_nodes=2)
        buf = m.gpus[0].alloc(4 * KB)
        with pytest.raises(MemoryError_):
            m.gpus[1].free(buf)


# --------------------------------------------------------------------- #
# copy engines
# --------------------------------------------------------------------- #
class TestCopyEngine:
    def test_copy_serialization(self):
        m = gpu_machine()
        ce = m.gpus[0].h2d
        done1, t1 = ce.begin_copy(0.0, 64 * KB)
        done2, t2 = ce.begin_copy(0.0, 64 * KB)
        # same-instant posts serialize: the second starts when the first ends
        assert done2 == pytest.approx(2 * done1)
        ce.finish_copy(t1)
        ce.finish_copy(t2)

    def test_copy_cost_model(self):
        m = gpu_machine()
        cfg = m.config
        done, tok = m.gpus[0].h2d.begin_copy(0.0, 1 * MB)
        assert done == pytest.approx(
            cfg.gpu_copy_base + (1 * MB) / cfg.gpu_h2d_bandwidth)
        m.gpus[0].h2d.finish_copy(tok)

    def test_submit_retires_credit(self):
        m = gpu_machine()
        ce = m.gpus[0].d2h
        fired = []
        ce.submit(0.0, 8 * KB, on_done=lambda: fired.append(True))
        assert ce.outstanding == 1
        m.engine.run()
        assert ce.outstanding == 0
        assert fired == [True]

    def test_queue_depth_counts_stalls(self):
        m = gpu_machine(gpu_copy_queue_depth=2)
        ce = m.gpus[0].h2d
        tokens = [ce.begin_copy(0.0, 1 * KB)[1] for _ in range(4)]
        assert ce.queue_stalls == 2
        assert ce.outstanding_peak == 4
        for t in tokens:
            ce.finish_copy(t)

    def test_nonpositive_copy_rejected(self):
        m = gpu_machine()
        with pytest.raises(HardwareError):
            m.gpus[0].h2d.begin_copy(0.0, 0)


# --------------------------------------------------------------------- #
# kernel slots
# --------------------------------------------------------------------- #
class TestKernelSlots:
    def test_slots_overlap_then_serialize(self):
        m = gpu_machine(gpu_kernel_slots=2)
        gpu = m.gpus[0]
        d1 = gpu.launch_kernel(0.0, 10e-6)
        d2 = gpu.launch_kernel(0.0, 10e-6)
        d3 = gpu.launch_kernel(0.0, 10e-6)
        # two slots run concurrently; the third waits for the earliest
        assert d1 == d2 == pytest.approx(10e-6)
        assert d3 == pytest.approx(20e-6)
        assert gpu.stats()["kernels"] == 3

    def test_completion_callback(self):
        m = gpu_machine()
        fired = []
        done = m.gpus[0].launch_kernel(0.0, 5e-6, on_done=lambda: fired.append(m.engine.now))
        m.engine.run()
        assert fired == [done]

    def test_negative_duration_rejected(self):
        m = gpu_machine()
        with pytest.raises(HardwareError):
            m.gpus[0].launch_kernel(0.0, -1.0)


# --------------------------------------------------------------------- #
# protocol selection
# --------------------------------------------------------------------- #
class TestCrossover:
    def test_gpu_path_for(self):
        cfg = MachineConfig()
        assert cfg.gpu_path_for(1 * KB) == "staged"
        assert cfg.gpu_path_for(cfg.gpu_staged_crossover - 1) == "staged"
        assert cfg.gpu_path_for(cfg.gpu_staged_crossover) == "direct"
        assert cfg.gpu_path_for(1 * MB) == "direct"

    @pytest.mark.parametrize("size,winner", [
        (2 * KB, "staged"), (8 * KB, "staged"),
        (128 * KB, "direct"), (512 * KB, "direct"),
    ])
    def test_staged_vs_direct_timing(self, size, winner):
        lat = {tr: gpu_pingpong(size, transport=tr, iters=10,
                                warmup=2).one_way_latency
               for tr in ("staged", "direct", "auto")}
        loser = "direct" if winner == "staged" else "staged"
        assert lat[winner] < lat[loser]
        assert repr(lat["auto"]) == repr(lat[winner])

    @pytest.mark.parametrize("layer", ["ugni", "mpi", "rdma"])
    def test_all_layers_carry_device_payloads(self, layer):
        r = gpu_pingpong(8 * KB, layer=layer, transport="auto",
                         iters=5, warmup=1)
        assert r.one_way_latency > 0
        assert r.stats["gpu_staged_sent"] > 0
        assert r.stats["gpu_direct_sent"] == 0

    def test_unknown_transport_raises(self):
        from repro.errors import LrtsError
        with pytest.raises(LrtsError):
            gpu_pingpong(8 * KB, transport="warp", iters=2, warmup=0)

    def test_intranode_goes_d2d(self):
        # both PEs on one node: no NIC, the peer-DMA path carries it
        from repro.charm import Chare, Charm
        from repro.lrts.factory import make_runtime

        cfg = tiny_config().replace(cores_per_node=2, gpus_per_node=1,
                                    gpu_transport="auto")
        conv, lrts = make_runtime(n_nodes=1, layer="ugni", config=cfg,
                                  seed=0)
        charm = Charm(conv)
        got: list[int] = []

        class _Peer(Chare):
            def go(self) -> None:
                self.buf = self.device_alloc(4 * KB)
                self.thisProxy[1].hit(_size=4 * KB, _device=self.buf)

            def hit(self) -> None:
                got.append(self.my_pe)

        arr = charm.create_array(_Peer, 2,
                                 map=lambda indices, n_pes: {0: 0, 1: 1},
                                 name="d2d")
        charm.start(lambda pe: arr[0].go())
        charm.run()
        assert got == [1]
        stats = lrts.gpu_stats()
        assert stats["gpu_d2d_sent"] == 1
        assert stats["gpu_staged_sent"] == 0
        assert stats["gpu_direct_sent"] == 0
        # internode sends never take the peer-DMA path
        r2 = gpu_pingpong(8 * KB, iters=3, warmup=1)
        assert r2.stats["gpu_d2d_sent"] == 0


# --------------------------------------------------------------------- #
# determinism and transport invariance
# --------------------------------------------------------------------- #
class TestDeterminism:
    def test_identical_reruns(self):
        a = gpu_pingpong(32 * KB, iters=10, warmup=2)
        b = gpu_pingpong(32 * KB, iters=10, warmup=2)
        assert repr(a.one_way_latency) == repr(b.one_way_latency)
        assert a.digest == b.digest

    def test_kneighbor_transport_invariant(self):
        runs = {tr: gpu_kneighbor(64 * KB, transport=tr, iters=4, warmup=1)
                for tr in ("staged", "direct")}
        assert runs["staged"].digest == runs["direct"].digest
        assert (runs["staged"].iteration_time
                != runs["direct"].iteration_time)

    @settings(**SETTINGS)
    @given(st.integers(256, 64 * KB))
    def test_staged_and_direct_agree_on_results(self, size):
        """Property: for any size across the crossover, the protocol
        choice changes timing only — application digests are identical."""
        staged = gpu_pingpong(size, transport="staged", iters=4, warmup=1)
        direct = gpu_pingpong(size, transport="direct", iters=4, warmup=1)
        assert staged.digest == direct.digest
