"""Give-up paths of the reliability layer: exhausted retries must
terminate, be reported, and leak nothing.

Regression tests for two silent-loss bugs:

* ``_post_guarded`` used to abandon a post without telling anyone — the
  initiating protocol step waited forever and its rendezvous buffers
  leaked.  Now ``on_failed`` runs in PE context with a
  :class:`UgniTransactionError`, ``post_failures``/``rndv_failed``/
  ``persistent_failed`` are bumped, and both sides reclaim their buffers
  (the :data:`RNDV_FAIL_TAG` control message).
* ``_rel_seen`` grew a per-pair seen-set forever; it is now a cumulative
  watermark plus a bounded out-of-order window (:class:`_RelRx`).
"""

import pytest

from repro.apps.pingpong import charm_pingpong
from repro.converse.scheduler import Message
from repro.faults import FaultConfig
from repro.hardware import Machine
from repro.hardware.config import tiny as tiny_config
from repro.lrts.factory import make_runtime
from repro.lrts.ugni_layer import UgniLayerConfig
from repro.lrts.ugni_layer.reliability import _RelRx
from repro.sim.trace import TraceLog
from repro.units import KB

#: small retry budget + fast backoff so give-up happens quickly
FAST = dict(reliability=True, max_retries=3,
            retry_backoff_base=2e-6, retry_backoff_max=8e-6)


def make(layer_config, faults=None, seed=0):
    m = Machine(n_nodes=4, config=tiny_config(cores_per_node=2),
                seed=seed, trace=TraceLog())
    conv, layer = make_runtime(machine=m, n_pes=m.n_pes, layer="ugni",
                               layer_config=layer_config, faults=faults)
    return m, conv, layer


class TestSmsgGiveUp:
    def test_total_loss_terminates_and_reports(self):
        """100% drop: every packet exhausts max_retries; the run must
        still reach quiescence (no retry timer lives past the give-up)
        with every abandonment counted and the tx table empty."""
        m, conv, layer = make(UgniLayerConfig(**FAST),
                              faults=FaultConfig(smsg_drop_rate=1.0))
        delivered = []
        h = conv.register_handler(lambda pe, msg: delivered.append(msg))
        sender = conv.register_handler(
            lambda pe, msg: conv.send(pe, 2, Message(h, pe.rank, 2, 64)))
        for _ in range(5):
            conv.send_from_outside(0, Message(sender, 0, 0, 0))
        m.engine.run(max_events=1_000_000)  # raises if retries never stop
        s = layer.stats()
        assert s["rel_failed"] == 5
        assert delivered == []
        assert layer._rel_tx == {}  # every record retired at give-up
        assert m.trace.count("recovery", "give_up") == 5
        # mailbox credit reclaimed when each dropped delivery resolved
        assert all(c.credits_used == 0
                   for c in layer.gni.smsg._connections.values())
        assert m.engine.peek() == float("inf")  # truly quiescent


class TestPostGiveUp:
    @pytest.mark.parametrize("mode", ["get", "put"])
    def test_abandoned_rendezvous_reclaims_both_sides(self, mode):
        """100% RDMA errors: the FMA/BTE post gives up, the failing side
        reclaims its buffer and the RNDV_FAIL control message lets the
        peer reclaim the one it pinned — nothing leaks, nothing hangs."""
        m, conv, layer = make(UgniLayerConfig(rendezvous=mode, **FAST),
                              faults=FaultConfig(rdma_error_rate=1.0))
        delivered = []
        h = conv.register_handler(lambda pe, msg: delivered.append(msg))
        sender = conv.register_handler(
            lambda pe, msg: conv.send(pe, 2, Message(h, pe.rank, 2, 64 * KB)))
        conv.send_from_outside(0, Message(sender, 0, 0, 0))
        m.engine.run(max_events=1_000_000)
        s = layer.stats()
        assert s["post_failures"] == 1
        assert s["post_retries"] == layer.lcfg.max_retries
        assert s["rndv_failed"] == 1
        assert delivered == []  # lost and reported, not silently hung
        assert s["pool_live_blocks"] == 0  # both sides reclaimed
        assert s["pool_live_bytes"] == 0
        assert m.trace.count("recovery", "post_give_up") == 1
        assert s["rel_failed"] == 0  # control SMSGs were unaffected
        assert m.engine.peek() == float("inf")

    def test_abandoned_persistent_send_keeps_channel(self):
        """A persistent PUT that exhausts retries is counted as lost; the
        channel's pinned buffers persist by design (no leak of pool
        blocks, no dangling waiter)."""
        m, conv, layer = make(UgniLayerConfig(**FAST),
                              faults=FaultConfig(rdma_error_rate=1.0))
        delivered = []
        h = conv.register_handler(lambda pe, msg: delivered.append(msg))

        def boot(pe, msg):
            handle = layer.create_persistent(pe, 2, 4 * KB)
            layer.send_persistent(pe, handle,
                                  Message(h, pe.rank, 2, 2 * KB))

        hb = conv.register_handler(boot)
        conv.send_from_outside(0, Message(hb, 0, 0, 0))
        m.engine.run(max_events=1_000_000)
        s = layer.stats()
        assert s["persistent_failed"] == 1
        assert s["post_failures"] == 1
        assert s["persistent_rearms"] == s["post_retries"] > 0
        assert delivered == []
        assert s["pool_live_blocks"] == 0
        assert m.trace.count("recovery", "persist_send_failed") == 1
        assert m.engine.peek() == float("inf")


class TestDedupWindow:
    def test_watermark_semantics(self):
        rx = _RelRx()
        assert not rx.seen(0)
        rx.mark(0)
        rx.mark(1)
        assert rx.watermark == 1 and rx.window == set()
        rx.mark(5)
        rx.mark(3)
        assert rx.seen(5) and rx.seen(3) and not rx.seen(2)
        assert rx.window == {3, 5}
        rx.mark(2)
        assert rx.watermark == 3 and rx.window == {5}
        rx.mark(4)
        assert rx.watermark == 5 and rx.window == set()
        # everything at or below the watermark counts as seen forever
        assert all(rx.seen(s) for s in range(6))

    def test_force_advance_skips_permanent_gap(self):
        rx = _RelRx()
        for seq in range(1, 10):  # seq 0 abandoned by its sender
            rx.mark(seq)
        assert len(rx.window) == 9
        assert rx.force_advance(4) == 1
        assert rx.watermark == 9 and rx.window == set()
        # a straggler copy of the skipped seq is treated as a duplicate
        assert rx.seen(0)

    def test_window_cap_validated(self):
        with pytest.raises(ValueError):
            UgniLayerConfig(rel_window_cap=0)

    def test_window_stays_bounded_under_sustained_loss(self):
        """The receiver's dedup memory must stay O(window), not O(total
        messages) — this is the regression test for the unbounded
        seen-set."""
        lc = UgniLayerConfig(reliability=True, max_retries=30,
                             retry_backoff_base=5e-6, retry_backoff_max=10e-6)
        r = charm_pingpong(64, layer_config=lc,
                           faults=FaultConfig(smsg_drop_rate=0.15), seed=3)
        assert r.stats["rel_duplicates"] > 0  # dedup actually exercised
        assert r.stats["rel_window_peak"] <= lc.rel_window_cap
        # with in-order pingpong traffic the window should be tiny
        assert r.stats["rel_window_peak"] <= 4
