"""Tests for the memory pool, registration cache, and pxshm fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LrtsError, MemoryError_, UgniInvalidParam
from repro.hardware import Machine
from repro.hardware.config import tiny as tiny_config
from repro.memory import MemoryPool, PxshmFabric, RegistrationCache
from repro.ugni.api import GniJob
from repro.units import KB, MB


def make_job(n_nodes=2, cores_per_node=4):
    m = Machine(n_nodes=n_nodes, config=tiny_config(cores_per_node=cores_per_node))
    return m, GniJob(m)


class TestMemoryPool:
    def test_alloc_is_registered(self):
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=1 * MB)
        blk, cost = pool.alloc(16 * KB)
        assert blk.mem_handle.valid
        assert blk.mem_handle.covers(blk.addr, 16 * KB)
        assert cost == pytest.approx(m.config.mempool_alloc_cpu)

    def test_pool_alloc_much_cheaper_than_malloc_register(self):
        """The point of §IV.B: pool vs malloc+register cost."""
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=4 * MB)
        _, pool_cost = pool.alloc(64 * KB)
        unpooled = m.config.t_malloc(64 * KB) + m.config.t_register(64 * KB)
        assert pool_cost < unpooled / 10

    def test_free_reuses_space(self):
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=64 * KB, expand_bytes=64 * KB)
        blocks = []
        # fill most of the arena, free, refill repeatedly: no expansion
        for _ in range(20):
            blk, _ = pool.alloc(48 * KB)
            pool.free(blk)
        assert pool.expansions == 0
        pool.check_invariants()

    def test_overflow_expands_dynamically(self):
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=64 * KB, expand_bytes=64 * KB)
        a, _ = pool.alloc(48 * KB)
        b, cost = pool.alloc(48 * KB)  # overflow -> new arena
        assert pool.expansions == 1
        assert cost > m.config.t_register(64 * KB)  # expansion charged here
        assert b.mem_handle is not a.mem_handle
        pool.check_invariants()

    def test_expansion_sized_to_large_request(self):
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=64 * KB, expand_bytes=64 * KB)
        big, _ = pool.alloc(1 * MB)  # bigger than expand_bytes
        assert big.size >= 1 * MB

    @pytest.mark.sanitize_violations
    def test_double_free_rejected(self):
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=1 * MB)
        blk, _ = pool.alloc(1 * KB)
        pool.free(blk)
        with pytest.raises(MemoryError_):
            pool.free(blk)

    def test_destroy_returns_node_memory(self):
        m, job = make_job()
        before = m.nodes[0].memory.used
        pool = MemoryPool(job, node_id=0, initial_bytes=1 * MB)
        assert m.nodes[0].memory.used > before
        blk, _ = pool.alloc(4 * KB)
        with pytest.raises(MemoryError_):
            pool.destroy()  # live block
        pool.free(blk)
        pool.destroy()
        assert m.nodes[0].memory.used == before
        assert job.registrations[0].registered_bytes == 0

    def test_setup_cost_reflects_registration(self):
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=8 * MB)
        assert pool.setup_cost >= m.config.t_register(8 * MB)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 64 * 1024)),
            st.tuples(st.just("free"), st.integers(0, 10**6)),
        ),
        max_size=80,
    ))
    def test_property_pool_invariants(self, ops):
        """Random alloc/free interleavings keep pool accounting exact and
        all blocks inside valid registered arenas."""
        m, job = make_job()
        pool = MemoryPool(job, node_id=0, initial_bytes=256 * KB,
                          expand_bytes=128 * KB)
        live = []
        for op, arg in ops:
            if op == "alloc":
                blk, _ = pool.alloc(arg)
                assert blk.mem_handle.covers(blk.addr, blk.size)
                live.append(blk)
            elif live:
                pool.free(live.pop(arg % len(live)))
        # no two live blocks overlap
        spans = sorted((b.addr, b.end) for b in live)
        for (a0, e0), (a1, _) in zip(spans, spans[1:]):
            assert e0 <= a1
        pool.check_invariants()
        for b in live:
            pool.free(b)
        assert pool.live_bytes == 0
        pool.destroy()
        assert m.nodes[0].memory.used == 0


class TestRegistrationCache:
    def test_hit_is_cheap_miss_is_expensive(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0, capacity=8)
        blk = m.nodes[0].memory.malloc(64 * KB)
        h1, miss_cost = cache.lookup(blk)
        cache.unpin(h1)
        h2, hit_cost = cache.lookup(blk)
        cache.unpin(h2)
        assert h1 is h2
        assert miss_cost > m.config.t_register(64 * KB)
        assert hit_cost == pytest.approx(m.config.udreg_lookup_cpu)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_deregisters(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0, capacity=2)
        blocks = [m.nodes[0].memory.malloc(4 * KB) for _ in range(3)]
        handles = []
        for b in blocks:
            h, _ = cache.lookup(b)
            cache.unpin(h)
            handles.append(h)
        assert cache.evictions == 1
        assert not handles[0].valid  # oldest got deregistered
        assert handles[1].valid and handles[2].valid

    def test_pinned_entries_survive_eviction(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0, capacity=1)
        a = m.nodes[0].memory.malloc(4 * KB)
        b = m.nodes[0].memory.malloc(4 * KB)
        ha, _ = cache.lookup(a)  # stays pinned
        hb, _ = cache.lookup(b)
        assert ha.valid  # pinned -> not evicted even though capacity=1
        assert hb.valid
        cache.unpin(ha)
        cache.unpin(hb)

    def test_invalidate_on_free(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0)
        blk = m.nodes[0].memory.malloc(4 * KB)
        h, _ = cache.lookup(blk, pin=False)
        cache.invalidate(blk)
        assert not h.valid
        assert len(cache) == 0

    @pytest.mark.sanitize_violations
    def test_invalidate_pinned_rejected(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0)
        blk = m.nodes[0].memory.malloc(4 * KB)
        cache.lookup(blk)
        with pytest.raises(UgniInvalidParam):
            cache.invalidate(blk)

    def test_lookup_freed_block_rejected(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0)
        blk = m.nodes[0].memory.malloc(4 * KB)
        m.nodes[0].memory.free(blk)
        with pytest.raises(UgniInvalidParam):
            cache.lookup(blk)

    def test_unpin_without_pin_rejected(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0)
        blk = m.nodes[0].memory.malloc(4 * KB)
        h, _ = cache.lookup(blk)
        cache.unpin(h)
        with pytest.raises(UgniInvalidParam):
            cache.unpin(h)

    def test_hit_rate(self):
        m, job = make_job()
        cache = RegistrationCache(job, node_id=0)
        blk = m.nodes[0].memory.malloc(4 * KB)
        for _ in range(4):
            h, _ = cache.lookup(blk)
            cache.unpin(h)
        assert cache.hit_rate == pytest.approx(0.75)


class TestPxshm:
    def _deliveries(self):
        out = []

        def deliver(msg, t, recv_cpu):
            out.append((msg, t, recv_cpu))

        return out, deliver

    def test_delivery_same_node(self):
        m, _ = make_job()
        fab = PxshmFabric(m)
        out, deliver = self._deliveries()
        cpu = fab.send(0, 1, 4 * KB, "payload", deliver)
        assert cpu > m.config.t_memcpy(4 * KB)  # sender copy included
        m.engine.run()
        assert len(out) == 1
        msg, t, recv_cpu = out[0]
        assert msg.payload == "payload" and t > 0

    def test_cross_node_rejected(self):
        m, _ = make_job(n_nodes=2, cores_per_node=4)
        fab = PxshmFabric(m)
        with pytest.raises(LrtsError):
            fab.send(0, 4, 64, None, lambda *a: None)

    def test_self_send_rejected(self):
        m, _ = make_job()
        fab = PxshmFabric(m)
        with pytest.raises(LrtsError):
            fab.send(2, 2, 64, None, lambda *a: None)

    def test_single_copy_receiver_cheaper(self):
        m, _ = make_job()
        single = PxshmFabric(m, single_copy=True)
        double = PxshmFabric(m, single_copy=False)
        outs, delivers = self._deliveries()
        outd, deliverd = self._deliveries()
        single.send(0, 1, 64 * KB, None, delivers)
        double.send(2, 3, 64 * KB, None, deliverd)
        m.engine.run()
        assert outs[0][2] < outd[0][2]  # receiver cpu
        # sender cost identical (copy-in both cases)

    def test_region_backpressure(self):
        m, _ = make_job()
        cfg = m.config
        fab = PxshmFabric(m)
        out, deliver = self._deliveries()
        big = cfg.pxshm_region_bytes // 2 + 1
        fab.send(0, 1, big, "a", deliver)
        fab.send(0, 1, big, "b", deliver)  # won't fit until 'a' releases
        assert fab.pending() == 1
        m.engine.run()
        assert [o[0].payload for o in out] == ["a", "b"]
        assert fab.pending() == 0

    def test_region_memory_accounting(self):
        m, _ = make_job()
        fab = PxshmFabric(m)
        out, deliver = self._deliveries()
        fab.send(0, 1, 64, None, deliver)
        fab.send(0, 2, 64, None, deliver)
        fab.send(1, 0, 64, None, deliver)
        assert fab.region_memory == 3 * m.config.pxshm_region_bytes

    def test_many_messages_all_delivered_in_order(self):
        m, _ = make_job()
        fab = PxshmFabric(m)
        out, deliver = self._deliveries()
        for i in range(200):
            fab.send(0, 1, 32 * KB, i, deliver)
        m.engine.run()
        assert [o[0].payload for o in out] == list(range(200))
