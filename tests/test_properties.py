"""Hypothesis property tests on cross-cutting invariants.

Each test states an invariant the stack must hold for *any* input in the
strategy's domain — these are the checks that catch protocol bugs unit
tests' hand-picked cases miss.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.converse.scheduler import ConverseRuntime, Message
from repro.hardware import Machine
from repro.hardware.config import tiny as tiny_config
from repro.lrts.factory import make_runtime
from repro.mpish import ANY, MpiWorld
from repro.mpish.matching import Arrival, MatchEngine
from repro.sim.engine import Engine

SETTINGS = dict(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------- #
# MPI matching vs. a brute-force reference model
# --------------------------------------------------------------------- #
class _ReferenceMatcher:
    """Obviously-correct O(n) model of MPI matching semantics."""

    def __init__(self):
        self.unexpected = []

    def add(self, src, tag, uid):
        self.unexpected.append((src, tag, uid))

    def match(self, want_src, want_tag):
        for i, (src, tag, uid) in enumerate(self.unexpected):
            if want_src in (ANY, src) and want_tag in (ANY, tag):
                self.unexpected.pop(i)
                return uid
        return None


@settings(**SETTINGS)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("arrive"), st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.just("recv"),
                  st.sampled_from([ANY, 0, 1, 2, 3]),
                  st.sampled_from([ANY, 0, 1, 2, 3])),
    ),
    max_size=60,
))
def test_match_engine_agrees_with_reference(ops):
    """The production matcher must pick exactly the same message as the
    reference for every arrival/receive interleaving (MPI's FIFO +
    wildcard semantics)."""
    eng = MatchEngine(0, tiny_config())
    ref = _ReferenceMatcher()
    uid = 0
    for op in ops:
        if op[0] == "arrive":
            _, src, tag = op
            eng.add_unexpected(Arrival(src, 0, tag, 8, uid, 0.0))
            ref.add(src, tag, uid)
            uid += 1
        else:
            _, src, tag = op
            got, _ = eng.match_unexpected(src, tag, pop=True)
            expect = ref.match(src, tag)
            assert (got.payload if got else None) == expect
    assert len(eng.unexpected) == len(ref.unexpected)


# --------------------------------------------------------------------- #
# SMSG credit conservation under random traffic
# --------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                          st.integers(1, 512)), max_size=80),
       st.integers(0, 2**16))
def test_smsg_credits_conserved(messages, seed):
    from repro.errors import UgniInvalidParam, UgniNoSpace
    from repro.ugni.api import GniJob

    m = Machine(n_nodes=4, config=tiny_config(cores_per_node=1), seed=seed)
    job = GniJob(m)
    sent = 0
    for src, dst, size in messages:
        if src == dst:
            continue
        try:
            job.SmsgSendWTag(src, dst, tag=0, nbytes=size)
            sent += 1
        except (UgniNoSpace, UgniInvalidParam):
            pass
    m.engine.run()
    # drain everything everywhere
    drained = 0
    for pe in range(4):
        while True:
            msg, _ = job.SmsgGetNextWTag(pe)
            if msg is None:
                break
            drained += 1
    assert drained == sent
    assert job.smsg.in_flight() == 0
    # every connection's credits fully released
    for conn in job.smsg._connections.values():
        assert conn.credits_used == 0


# --------------------------------------------------------------------- #
# Scheduler: virtual time is monotone and conserved per PE
# --------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(st.lists(st.tuples(st.integers(0, 5), st.floats(0.0, 1e-5)),
                min_size=1, max_size=50),
       st.integers(0, 100))
def test_scheduler_time_accounting_exact(work_items, seed):
    """useful + overhead + idle per PE must equal elapsed time exactly,
    and handler executions never overlap on one PE."""
    conv, _ = make_runtime(n_pes=6, config=tiny_config(cores_per_node=2),
                           seed=seed)
    spans = {r: [] for r in range(6)}

    def handler(pe, msg):
        start = pe.vtime
        pe.charge(msg.payload, "useful")
        spans[pe.rank].append((start, pe.vtime))

    hid = conv.register_handler(handler)
    for rank, amount in work_items:
        conv.send_from_outside(rank, Message(hid, rank, rank, 8,
                                             payload=float(amount)))
    conv.run(max_events=10**6)
    # the logical horizon: handlers may run past the final engine event
    # (vtime runs ahead while the handler's charged time elapses)
    end = max([conv.engine.now] + [pe.busy_until for pe in conv.pes])
    for pe in conv.pes:
        # no overlapping executions
        for (s0, e0), (s1, e1) in zip(spans[pe.rank], spans[pe.rank][1:]):
            assert s1 >= e0
        # accounting closes: busy time fits inside the horizon
        busy = pe.useful_time + pe.overhead_time
        assert busy <= end + 1e-12


# --------------------------------------------------------------------- #
# Charm reductions: any contribution pattern combines exactly once
# --------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(st.integers(1, 30), st.integers(1, 3), st.integers(2, 12))
def test_reduction_sums_any_shape(n_elems, rounds, n_pes):
    from repro.charm import Chare, Charm

    conv, _ = make_runtime(n_pes=n_pes, config=tiny_config(cores_per_node=4))
    charm = Charm(conv)
    results = []

    class W(Chare):
        def go(self):
            self.contribute(self.thisIndex + 1, "sum",
                            self.thisProxy[0].report)

        def report(self, value):
            results.append(value)

    arr = charm.create_array(W, n_elems)
    for _ in range(rounds):
        charm.start(lambda pe: arr.go())
        charm.run(max_events=10**6)
    expected = n_elems * (n_elems + 1) // 2
    assert results == [expected] * rounds


# --------------------------------------------------------------------- #
# Message conservation through the full uGNI machine layer
# --------------------------------------------------------------------- #
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                          st.sampled_from([8, 100, 2000, 40000])),
                min_size=1, max_size=40),
       st.sampled_from(["ugni", "mpi"]))
def test_layer_delivers_every_message_once(traffic, layer):
    conv, lrts = make_runtime(n_pes=8, layer=layer,
                              config=tiny_config(cores_per_node=4))
    got = []

    def sink(pe, msg):
        got.append(msg.payload)

    h_sink = conv.register_handler(sink)

    def spray(pe, msg):
        for i, (src, dst, size) in enumerate(traffic):
            if src == pe.rank:
                conv.send(pe, dst, Message(h_sink, pe.rank, dst, size,
                                           payload=i))

    h_spray = conv.register_handler(spray)
    for src in range(8):
        conv.send_from_outside(src, Message(h_spray, src, src, 0))
    conv.run(max_events=10**6)
    assert sorted(got) == sorted(i for i, _ in enumerate(traffic))


# --------------------------------------------------------------------- #
# Engine: event ordering is a total order consistent with timestamps
# --------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(st.lists(st.floats(0, 1e-3), min_size=1, max_size=100))
def test_engine_executes_in_timestamp_order(delays):
    eng = Engine()
    fired = []
    for i, d in enumerate(delays):
        eng.call_after(d, fired.append, (d, i))
    eng.run()
    assert len(fired) == len(delays)
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # ties broken by scheduling order
    for (t0, i0), (t1, i1) in zip(fired, fired[1:]):
        if t0 == t1:
            assert i0 < i1


# --------------------------------------------------------------------- #
# Determinism: whole applications replay identically
# --------------------------------------------------------------------- #
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 1000))
def test_full_app_replay_determinism(seed):
    from repro.apps.nqueens import run_nqueens

    a = run_nqueens(8, 4, 8, layer="ugni", seed=seed,
                    config=tiny_config(), mode="exact")
    b = run_nqueens(8, 4, 8, layer="ugni", seed=seed,
                    config=tiny_config(), mode="exact")
    assert a.total_time == b.total_time
    assert a.messages_sent == b.messages_sent
