"""Shared pytest wiring: the lifecycle-sanitizer guard.

When the suite runs under ``REPRO_SANITIZE=1`` every test's machines build
a :class:`repro.sanitize.Sanitizer`, and this guard fails any test whose
sanitizers recorded a violation during the run.  Tests that *seed*
violations on purpose opt out with ``@pytest.mark.sanitize_violations``.

Plain pytest hooks (not an autouse fixture) keep hypothesis's
``function_scoped_fixture`` health check quiet for the property tests.
"""

import pytest

from repro import sanitize


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sanitize_violations: this test intentionally triggers lifecycle "
        "sanitizer violations; the sanitizer guard must not fail it",
    )


def pytest_runtest_setup(item):
    # every test starts with a clean slate of tracked sanitizers
    sanitize.clear_registry()


@pytest.hookimpl(wrapper=True)
def pytest_runtest_teardown(item, nextitem):
    # wrap so pytest's own teardown (fixture finalizers, SetupState pops)
    # completes before the guard can fail the test
    result = yield
    sanitizers = sanitize.active_sanitizers()
    problems = sanitize.collect()
    sanitize.clear_registry()
    if (sanitizers and problems
            and item.get_closest_marker("sanitize_violations") is None):
        lines = "\n".join(f"  {v}" for v in problems)
        pytest.fail(
            f"lifecycle sanitizer recorded {len(problems)} violation(s) "
            f"during this test:\n{lines}",
            pytrace=False,
        )
    return result
