"""Sanitizer coverage for the GPU model's violation kinds.

One seeded violation per kind — ``device-use-after-free`` (double free
and post-after-free provenance), ``foreign-device-free``,
``copy-credit-leak``, ``device-leak`` — plus clean layered runs on every
machine layer, and the observer-effect contract: turning the sanitizer
or observer on must not change simulated results.
"""

import pytest

from repro import sanitize
from repro.apps.gpu_apps import gpu_kneighbor, gpu_pingpong
from repro.charm import Chare, Charm
from repro.errors import MemoryError_
from repro.hardware import Machine
from repro.hardware.config import MachineConfig, tiny as tiny_config
from repro.lrts.factory import make_runtime
from repro.units import KB


def san_gpu_machine(n_nodes=2, **over):
    over.setdefault("gpus_per_node", 1)
    cfg = tiny_config(cores_per_node=1).replace(sanitize=True, **over)
    return Machine(n_nodes=n_nodes, config=cfg, seed=0)


def kinds(m):
    return {v.kind for v in m.sanitizer.violations}


class TestSeededDeviceViolations:
    @pytest.mark.sanitize_violations
    def test_device_double_free(self):
        m = san_gpu_machine()
        gpu = m.gpus[0]
        buf = gpu.alloc(4 * KB)
        gpu.free(buf)
        with pytest.raises(MemoryError_):
            gpu.free(buf)
        assert "device-use-after-free" in kinds(m)

    @pytest.mark.sanitize_violations
    def test_foreign_device_free(self):
        m = san_gpu_machine()
        buf = m.gpus[0].alloc(4 * KB)
        with pytest.raises(MemoryError_):
            m.gpus[1].free(buf)
        assert "foreign-device-free" in kinds(m)
        # the buffer survived the bad free; its real owner still takes it
        m.gpus[0].free(buf)
        assert buf.freed

    @pytest.mark.sanitize_violations
    def test_post_after_free(self):
        """A device payload posted after its buffer was freed."""
        cfg = tiny_config(cores_per_node=1).replace(
            sanitize=True, gpus_per_node=1)
        conv, lrts = make_runtime(n_nodes=2, layer="ugni", config=cfg,
                                  seed=0)
        charm = Charm(conv)
        got: list[int] = []

        class _Bad(Chare):
            def go(self) -> None:
                buf = self.device_alloc(4 * KB)
                self.device_free(buf)
                # classic async-send bug: the buffer is named by the
                # post after cudaFree already returned it
                self.thisProxy[1].hit(_size=4 * KB, _device=buf)

            def hit(self) -> None:
                got.append(self.my_pe)

        arr = charm.create_array(_Bad, 2, map="round_robin", name="uaf")
        charm.start(lambda pe: arr[0].go())
        charm.run()
        assert got
        assert "device-use-after-free" in kinds(conv.machine)

    @pytest.mark.sanitize_violations
    def test_copy_credit_leak(self):
        m = san_gpu_machine()
        ce = m.gpus[0].h2d
        ce.begin_copy(0.0, 8 * KB)  # credit taken, never retired
        m.engine.run()              # empty heap -> drain checks fire
        assert "copy-credit-leak" in kinds(m)

    @pytest.mark.sanitize_violations
    def test_device_leak_at_teardown(self):
        m = san_gpu_machine()
        m.gpus[0].alloc(4 * KB)  # never freed
        found = {v.kind for v in m.sanitizer.check_teardown()}
        assert "device-leak" in found

    def test_retired_copies_do_not_leak(self):
        m = san_gpu_machine()
        ce = m.gpus[0].d2h
        ce.submit(0.0, 8 * KB)
        m.engine.run()
        assert "copy-credit-leak" not in kinds(m)


class TestCleanLayeredRuns:
    @pytest.mark.parametrize("layer", ["ugni", "mpi", "rdma"])
    def test_gpu_pingpong_runs_clean(self, layer):
        sanitize.clear_registry()
        cfg = MachineConfig().replace(sanitize=True)
        gpu_pingpong(8 * KB, layer=layer, config=cfg, iters=5, warmup=1)
        gpu_pingpong(128 * KB, layer=layer, config=cfg, iters=5, warmup=1)
        # full audit: every landing buffer freed, every credit retired
        sanitize.assert_clean(f"gpu ping-pong on {layer}")
        sanitize.clear_registry()

    def test_gpu_kneighbor_runs_clean(self):
        sanitize.clear_registry()
        cfg = MachineConfig().replace(sanitize=True)
        gpu_kneighbor(64 * KB, config=cfg, iters=3, warmup=1)
        sanitize.assert_clean("gpu kNeighbor")
        sanitize.clear_registry()


class TestObserverEffect:
    def test_sanitizer_does_not_change_results(self):
        base = gpu_pingpong(32 * KB, iters=5, warmup=1)
        cfg = MachineConfig().replace(sanitize=True)
        sanitize.clear_registry()
        san = gpu_pingpong(32 * KB, config=cfg, iters=5, warmup=1)
        sanitize.clear_registry()
        assert repr(base.one_way_latency) == repr(san.one_way_latency)
        assert base.digest == san.digest

    def test_observer_does_not_change_results(self):
        base = gpu_kneighbor(64 * KB, iters=3, warmup=1)
        cfg = MachineConfig().replace(observe=True)
        obs = gpu_kneighbor(64 * KB, config=cfg, iters=3, warmup=1)
        assert repr(base.iteration_time) == repr(obs.iteration_time)
        assert base.digest == obs.digest
