"""Tests for spanning trees and quiescence internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converse.collectives import SpanningTree


class TestSpanningTree:
    def test_root_has_no_parent(self):
        t = SpanningTree(10)
        assert t.parent(0) is None

    def test_parent_child_consistency(self):
        t = SpanningTree(23, branching=4)
        for pe in range(23):
            for c in t.children(pe):
                assert t.parent(c) == pe

    def test_every_pe_reachable_once(self):
        t = SpanningTree(37, branching=3)
        seen = []

        def walk(pe):
            seen.append(pe)
            for c in t.children(pe):
                walk(c)

        walk(0)
        assert sorted(seen) == list(range(37))

    def test_nonzero_root(self):
        t = SpanningTree(9, branching=2, root=5)
        assert t.parent(5) is None
        seen = []

        def walk(pe):
            seen.append(pe)
            for c in t.children(pe):
                walk(c)

        walk(5)
        assert sorted(seen) == list(range(9))

    def test_subtree_sizes_partition(self):
        t = SpanningTree(20, branching=4)
        assert t.subtree_size(0) == 20
        child_total = sum(t.subtree_size(c) for c in t.children(0))
        assert child_total == 19

    def test_depth_logarithmic(self):
        assert SpanningTree(1).depth() == 0
        assert SpanningTree(5, branching=4).depth() == 1
        assert SpanningTree(21, branching=4).depth() == 2
        assert SpanningTree(4096, branching=4).depth() <= 6

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SpanningTree(0)
        with pytest.raises(ValueError):
            SpanningTree(4, branching=1)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 200), st.integers(2, 8), st.integers(0, 199))
    def test_property_tree_is_spanning(self, n, k, root):
        root = root % n
        t = SpanningTree(n, branching=k, root=root)
        # every node walks up to the root in <= depth+1 steps
        for pe in range(n):
            hops = 0
            at = pe
            while t.parent(at) is not None:
                at = t.parent(at)
                hops += 1
                assert hops <= n
            assert at == root


class TestQuiescenceUnits:
    def test_waves_counted(self):
        from repro.converse.quiescence import QuiescenceDetector
        from repro.hardware.config import tiny as tiny_config
        from repro.lrts.factory import make_runtime

        conv, _ = make_runtime(n_pes=8, config=tiny_config())
        qd = QuiescenceDetector(conv)
        fired = []
        qd.start(fired.append)
        conv.run(max_events=10**5)
        assert fired, "system was quiescent; detection must fire"
        assert qd.waves >= 2  # two consecutive agreeing waves required

    def test_double_start_rejected(self):
        from repro.converse.quiescence import QuiescenceDetector
        from repro.hardware.config import tiny as tiny_config
        from repro.lrts.factory import make_runtime

        conv, _ = make_runtime(n_pes=4, config=tiny_config())
        qd = QuiescenceDetector(conv)
        qd.start(lambda t: None)
        with pytest.raises(RuntimeError):
            qd.start(lambda t: None)

    def test_not_quiescent_while_messages_outstanding(self):
        """QD must not fire while notify_send counts exceed processed."""
        from repro.converse.quiescence import QuiescenceDetector
        from repro.hardware.config import tiny as tiny_config
        from repro.lrts.factory import make_runtime

        conv, _ = make_runtime(n_pes=4, config=tiny_config())
        qd = QuiescenceDetector(conv)
        qd.notify_send(0)  # one message "in flight" forever
        fired = []
        qd.start(fired.append)
        conv.run(until=2e-3, max_events=10**5)
        assert not fired
