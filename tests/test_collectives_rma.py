"""Persistent RMA collectives: bit-identical across layers and transports."""

import pytest

from repro import sanitize
from repro.apps.collectives_app import run_allgather, run_alltoallv
from repro.converse.collectives import CollectiveEngine
from repro.errors import CharmError
from repro.faults import FaultConfig
from repro.hardware.config import MachineConfig
from repro.lrts.factory import make_runtime

DF = MachineConfig(topology="dragonfly")

#: (layer, machine config) — every registered fabric
FABRICS = [("ugni", None), ("mpi", None), ("rdma", DF)]


class TestDigestInvariance:
    def test_alltoallv_identical_everywhere(self):
        digests = {
            (layer, algo): run_alltoallv(n_pes=6, layer=layer, algorithm=algo,
                                         config=cfg).digest
            for layer, cfg in FABRICS
            for algo in ("tree", "persistent")
        }
        assert len(set(digests.values())) == 1, digests

    def test_allgather_identical_everywhere(self):
        digests = {
            (layer, algo): run_allgather(n_pes=6, layer=layer, algorithm=algo,
                                         config=cfg).digest
            for layer, cfg in FABRICS
            for algo in ("tree", "persistent")
        }
        assert len(set(digests.values())) == 1, digests

    def test_single_rank_degenerate(self):
        r = run_allgather(n_pes=1, layer="ugni", algorithm="persistent")
        assert r.completed == 1


class TestPersistentTransport:
    def test_rdma_uses_windows(self):
        r = run_alltoallv(n_pes=6, layer="rdma", algorithm="persistent",
                          config=DF)
        assert r.stats["persistent_sent"] > 0
        assert r.stats["persistent_failed"] == 0

    def test_ugni_uses_persistent_messages(self):
        r = run_alltoallv(n_pes=6, layer="ugni", algorithm="persistent")
        assert r.stats["persistent_sent"] > 0

    def test_mpi_falls_back_to_plain_sends(self):
        """mpi has no persistent capability; the pattern still completes."""
        r = run_alltoallv(n_pes=6, layer="mpi", algorithm="persistent")
        assert r.completed == 6
        assert "persistent_sent" not in r.stats

    def test_channels_are_reused_across_operations(self):
        """Back-to-back collectives ride the same pre-negotiated windows."""
        conv, lrts = make_runtime(n_nodes=4, layer="rdma",
                                  config=DF.replace(cores_per_node=1))
        coll = CollectiveEngine(conv, algorithm="persistent")
        from repro.converse.scheduler import Message

        rounds: list[int] = []

        def go(pe, cid):
            coll.allgather(pe, cid, 1024, f"r{pe.rank}",
                           lambda p, items: rounds.append(p.rank))

        hid = conv.register_handler(lambda pe, m: go(pe, m.payload))
        for rank in range(4):
            conv.send_from_outside(rank, Message(hid, rank, rank, 0, "op1"))
        conv.run()
        first_connects = lrts.stats()["qp_connects"]
        for rank in range(4):
            conv.send_from_outside(rank, Message(hid, rank, rank, 0, "op2"),
                                   at=conv.machine.engine.now + 1e-6)
        conv.run()
        assert len(rounds) == 8
        # second round created no new channels and no new connections
        assert lrts.stats()["qp_connects"] == first_connects

    def test_unknown_algorithm_rejected(self):
        conv, _ = make_runtime(n_nodes=2, layer="mpi")
        with pytest.raises(CharmError):
            CollectiveEngine(conv, algorithm="hypercube")


class TestChaos:
    def test_alltoallv_survives_faults_with_sanitizer(self):
        sanitize.clear_registry()
        try:
            cfg = DF.replace(sanitize=True)
            clean = run_alltoallv(n_pes=6, layer="rdma",
                                  algorithm="persistent", config=cfg, seed=2)
            faulty = run_alltoallv(
                n_pes=6, layer="rdma", algorithm="persistent", config=cfg,
                seed=2,
                faults=FaultConfig(smsg_drop_rate=0.05, smsg_stall_rate=0.05,
                                   rdma_error_rate=0.05))
            assert faulty.completed == 6
            assert faulty.digest == clean.digest
            assert faulty.time >= clean.time
            sanitize.assert_clean("rdma chaos alltoallv")
        finally:
            sanitize.clear_registry()
