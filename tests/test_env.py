"""The shared environment-variable helpers (:mod:`repro._env`).

Every boolean knob in the repo parses through ``env_flag`` so that
``REPRO_X=0`` means *off* everywhere — string truthiness treated "0",
"false" and friends as enabled, which is the bug class these helpers
retired.
"""

import pytest

from repro._env import env_flag, env_int


class TestEnvFlag:
    @pytest.mark.parametrize("value", ["1", "true", "TRUE", "yes", "on",
                                       " 1 ", "anything-else"])
    def test_truthy(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert env_flag("REPRO_TEST_FLAG") is True

    @pytest.mark.parametrize("value", ["", "0", "false", "False", "FALSE",
                                       "no", "off", " 0 ", " off "])
    def test_falsey(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert env_flag("REPRO_TEST_FLAG") is False

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG") is False
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_explicit_zero_beats_truthy_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert env_flag("REPRO_TEST_FLAG", default=True) is False


class TestEnvInt:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "7")
        assert env_int("REPRO_TEST_INT") == 7

    def test_unset_and_empty_use_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT") is None
        assert env_int("REPRO_TEST_INT", 4) == 4
        monkeypatch.setenv("REPRO_TEST_INT", "")
        assert env_int("REPRO_TEST_INT", 4) == 4

    def test_garbage_raises_with_context(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "lots")
        with pytest.raises(ValueError, match="REPRO_TEST_INT"):
            env_int("REPRO_TEST_INT")


class TestRoutedFlags:
    """The repo's own knobs go through the helpers (regression pins)."""

    def test_sanitize_zero_off(self, monkeypatch):
        from repro import sanitize
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.sanitize_requested()

    def test_observe_zero_off(self, monkeypatch):
        from repro import observe
        monkeypatch.setenv("REPRO_OBSERVE", "0")
        assert not observe.observe_requested()

    def test_bench_jobs_env(self, monkeypatch):
        from repro.parallel.sweep import JOBS_ENV, resolve_jobs
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3
        monkeypatch.setenv(JOBS_ENV, "")
        assert resolve_jobs(None) == 1
        monkeypatch.delenv(JOBS_ENV)
        assert resolve_jobs(None) == 1
