"""Tests for the Projections-style tracing, profiles, and rendering."""

import numpy as np
import pytest

from repro.projections import TimeProfile, UtilizationTracer, render_profile


class TestTracer:
    def test_totals_accumulate(self):
        tr = UtilizationTracer(bin_width=1e-3)
        tr.record(0, 0.0, 2e-3, "useful")
        tr.record(1, 0.0, 1e-3, "overhead")
        tr.record(0, 2e-3, 5e-4, "idle")
        assert tr.total["useful"] == pytest.approx(2e-3)
        assert tr.total["overhead"] == pytest.approx(1e-3)
        assert tr.total["idle"] == pytest.approx(5e-4)

    def test_interval_split_across_bins(self):
        tr = UtilizationTracer(bin_width=1e-3)
        tr.record(0, 0.5e-3, 1e-3, "useful")  # spans bins 0 and 1
        bins = tr.bins("useful")
        assert bins[0] == pytest.approx(0.5e-3)
        assert bins[1] == pytest.approx(0.5e-3)

    def test_bins_grow_on_demand(self):
        tr = UtilizationTracer(bin_width=1e-3)
        tr.record(0, 0.499, 1e-3, "useful")
        assert tr.n_bins >= 500

    def test_unknown_kind_counts_as_overhead(self):
        tr = UtilizationTracer(bin_width=1e-3)
        tr.record(0, 0.0, 1e-3, "mystery")
        assert tr.total["overhead"] == pytest.approx(1e-3)

    def test_zero_duration_ignored(self):
        tr = UtilizationTracer(bin_width=1e-3)
        tr.record(0, 0.0, 0.0, "useful")
        assert tr.n_bins == 0

    def test_bad_bin_width_rejected(self):
        with pytest.raises(ValueError):
            UtilizationTracer(bin_width=0.0)

    def test_max_bins_guard(self):
        tr = UtilizationTracer(bin_width=1e-9, max_bins=1000)
        with pytest.raises(ValueError):
            tr.record(0, 1.0, 1e-9, "useful")


class TestProfile:
    def _profile(self, n_pes=2):
        tr = UtilizationTracer(bin_width=1e-3)
        # PE0: 100% useful for 4ms; PE1: idle 2ms then useful 2ms
        tr.record(0, 0.0, 4e-3, "useful")
        tr.record(1, 0.0, 2e-3, "idle")
        tr.record(1, 2e-3, 2e-3, "useful")
        return TimeProfile.from_tracer(tr, n_pes=n_pes)

    def test_fractions_sum_to_one(self):
        p = self._profile()
        total = p.useful + p.overhead + p.idle
        assert np.allclose(total, 1.0, atol=1e-9)

    def test_summary(self):
        p = self._profile()
        s = p.summary()
        assert s["useful"] == pytest.approx(0.75)
        assert s["idle"] == pytest.approx(0.25)

    def test_tail_idle_fraction(self):
        tr = UtilizationTracer(bin_width=1e-3)
        tr.record(0, 0.0, 2e-3, "useful")
        tr.record(0, 2e-3, 2e-3, "idle")  # idle tail
        p = TimeProfile.from_tracer(tr, n_pes=1)
        assert p.tail_idle_fraction(0.5) == pytest.approx(1.0)

    def test_until_clips(self):
        p_full = self._profile()
        tr = UtilizationTracer(bin_width=1e-3)
        tr.record(0, 0.0, 4e-3, "useful")
        p_cut = TimeProfile.from_tracer(tr, n_pes=1, until=2e-3)
        assert p_cut.n_bins == 2


class TestRender:
    def test_render_contains_legend_and_bars(self):
        p = TestProfile()._profile()
        text = render_profile(p, width=40, height=6, title="demo")
        assert "demo" in text
        assert "useful" in text and "idle" in text
        assert "#" in text

    def test_render_empty(self):
        tr = UtilizationTracer(bin_width=1e-3)
        p = TimeProfile.from_tracer(tr, n_pes=1)
        assert "empty" in render_profile(p)
