"""Memory pool and registration cache driven from multiple shards.

The sharded engine executes each node's events in that node's shard, so
allocator state is touched from several shard contexts within one run.
These tests drive :class:`MemoryPool` and :class:`RegistrationCache`
through event schedules spread across shards and assert the accounting
stays exact — including the property that no alloc/free interleaving
ever double-allocates overlapping space, and that a sharded run's
allocation sequence is bit-identical to the sequential engine's.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Machine
from repro.hardware.config import tiny as tiny_config
from repro.memory import MemoryPool, RegistrationCache
from repro.parallel import ShardedEngine
from repro.sim.engine import Engine
from repro.ugni.api import GniJob
from repro.units import KB

N_NODES = 4
TICK = 1e-6


def _make(engine):
    m = Machine(n_nodes=N_NODES, config=tiny_config(cores_per_node=1),
                engine=engine)
    return m, GniJob(m)


def _drive_pools(engine, ops):
    """Schedule ``(node, size, start, hold)`` allocs across shards.

    Every alloc checks it does not overlap any live block of its pool,
    holds the block for ``hold`` ticks, then frees it from an event on
    the same node.  Returns the exact allocation trace.
    """
    m, job = _make(engine)
    pools = {n: MemoryPool(job, node_id=n, initial_bytes=64 * KB,
                           expand_bytes=64 * KB) for n in range(N_NODES)}
    live = {n: [] for n in range(N_NODES)}
    trace = []

    def do_free(node, blk):
        live[node].remove(blk)
        pools[node].free(blk)

    def do_alloc(node, size, hold):
        blk, _ = pools[node].alloc(size)
        for other in live[node]:
            assert blk.end <= other.addr or other.end <= blk.addr, (
                f"double-allocated overlap on node {node}: "
                f"{blk!r} vs {other!r}")
        live[node].append(blk)
        trace.append((node, blk.addr, blk.size))
        engine.call_at_node(node, engine.now + hold * TICK,
                            do_free, node, blk)

    for node, size, start, hold in ops:
        engine.call_at_node(node, start * TICK, do_alloc, node, size, hold)
    engine.run()

    for n, pool in pools.items():
        assert not live[n]
        pool.check_invariants()
        assert pool.live_bytes == 0
    return trace, pools


class TestShardedPool:
    OPS = st.lists(
        st.tuples(
            st.integers(0, N_NODES - 1),   # owning node (-> shard)
            st.integers(1, 32 * 1024),     # size
            st.integers(1, 40),            # start tick
            st.integers(1, 30),            # hold ticks
        ),
        max_size=40,
    )

    @settings(max_examples=25, deadline=None)
    @given(OPS)
    def test_property_no_double_alloc_across_shards(self, ops):
        eng = ShardedEngine(n_shards=2)
        trace, _ = _drive_pools(eng, ops)
        assert not eng.shard_stats()["sequential"]
        # the same schedule on the sequential engine allocates the exact
        # same addresses in the exact same order
        seq_trace, _ = _drive_pools(Engine(), ops)
        assert trace == seq_trace

    def test_expansion_driven_from_both_shards(self):
        # nodes 0 (shard 0) and 3 (shard 1) overflow their arenas in the
        # same simulated instant; each pool expands independently
        eng = ShardedEngine(n_shards=2)
        ops = [(node, 48 * 1024, t, 50)
               for t in (1, 2) for node in (0, 3)]
        _, pools = _drive_pools(eng, ops)
        assert pools[0].expansions == 1
        assert pools[3].expansions == 1
        assert pools[1].expansions == pools[2].expansions == 0

    def test_expansion_counts_match_sequential(self):
        ops = [(n, 40 * 1024, t, 3) for t in (1, 5, 9, 13)
               for n in range(N_NODES)]
        _, shd = _drive_pools(ShardedEngine(n_shards=2), ops)
        _, seq = _drive_pools(Engine(), ops)
        for n in range(N_NODES):
            assert shd[n].expansions == seq[n].expansions


def _drive_caches(engine, capacity=2, rounds=3):
    """Interleave lookups of distinct blocks on every node's shard."""
    m, job = _make(engine)
    caches = {n: RegistrationCache(job, node_id=n, capacity=capacity)
              for n in range(N_NODES)}
    blocks = {n: [m.nodes[n].memory.malloc(4 * KB) for _ in range(4)]
              for n in range(N_NODES)}

    def do_lookup(node, i):
        handle, _ = caches[node].lookup(blocks[node][i])
        caches[node].unpin(handle)

    t = 0
    for r in range(rounds):
        for i in range(4):
            for node in range(N_NODES):
                t += 1
                engine.call_at_node(node, t * TICK, do_lookup, node, i)
    engine.run()
    return caches


class TestShardedRegCache:
    def test_eviction_across_shards(self):
        eng = ShardedEngine(n_shards=2)
        caches = _drive_caches(eng, capacity=2, rounds=3)
        assert not eng.shard_stats()["sequential"]
        for n, cache in caches.items():
            # 4 distinct blocks cycling through a 2-entry cache: every
            # round re-registers, evicting the oldest unpinned entry
            assert cache.evictions > 0
            assert len(cache) <= 2

    def test_counters_match_sequential(self):
        shd = _drive_caches(ShardedEngine(n_shards=2))
        seq = _drive_caches(Engine())
        for n in range(N_NODES):
            assert (shd[n].hits, shd[n].misses, shd[n].evictions) == \
                   (seq[n].hits, seq[n].misses, seq[n].evictions)

    def test_pinned_entries_survive_sharded_pressure(self):
        eng = ShardedEngine(n_shards=2)
        m, job = _make(eng)
        cache = RegistrationCache(job, node_id=3, capacity=1)
        a = m.nodes[3].memory.malloc(4 * KB)
        b = m.nodes[3].memory.malloc(4 * KB)
        pinned = []

        def pin_first():
            h, _ = cache.lookup(a)  # left pinned across events
            pinned.append(h)

        def press():
            h, _ = cache.lookup(b)
            cache.unpin(h)

        eng.call_at_node(3, 1 * TICK, pin_first)
        eng.call_at_node(3, 2 * TICK, press)
        eng.run()
        assert pinned[0].valid  # pinned -> survived capacity pressure
        assert len(cache) == 2  # over capacity rather than deadlocked
        cache.unpin(pinned[0])
