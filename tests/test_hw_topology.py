"""Tests for the 3D torus topology and routing geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.hardware.topology import Torus3D, fit_dims


class TestFitDims:
    def test_exact_cube(self):
        assert fit_dims(8) == (2, 2, 2)

    def test_volume_always_sufficient(self):
        for n in [1, 2, 3, 5, 7, 13, 100, 384, 640, 6384]:
            dims = fit_dims(n)
            assert dims[0] * dims[1] * dims[2] >= n

    def test_near_cubic(self):
        dx, dy, dz = fit_dims(1000)
        assert max(dx, dy, dz) <= 2 * min(dx, dy, dz) + 2

    def test_rejects_zero(self):
        with pytest.raises(TopologyError):
            fit_dims(0)


class TestCoordinates:
    def test_id_coord_roundtrip(self):
        t = Torus3D((3, 4, 5))
        for nid in range(t.volume):
            assert t.id_of(t.coord_of(nid)) == nid

    def test_out_of_range_id(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(TopologyError):
            t.coord_of(8)

    def test_out_of_range_coord(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(TopologyError):
            t.id_of((2, 0, 0))

    def test_invalid_dims(self):
        with pytest.raises(TopologyError):
            Torus3D((0, 1, 1))

    def test_all_coords_covers_volume(self):
        t = Torus3D((2, 3, 4))
        coords = list(t.all_coords())
        assert len(coords) == 24
        assert len(set(coords)) == 24


class TestDistance:
    def test_self_distance_zero(self):
        t = Torus3D((4, 4, 4))
        assert t.hop_distance((1, 2, 3), (1, 2, 3)) == 0

    def test_wraparound_shortcut(self):
        t = Torus3D((8, 1, 1))
        # 0 -> 7 is one hop backwards around the ring, not 7 forward
        assert t.hop_distance((0, 0, 0), (7, 0, 0)) == 1

    def test_manhattan_on_small_torus(self):
        t = Torus3D((5, 5, 5))
        assert t.hop_distance((0, 0, 0), (2, 1, 2)) == 5

    def test_symmetry(self):
        t = Torus3D((4, 6, 3))
        a, b = (0, 5, 1), (3, 2, 2)
        assert t.hop_distance(a, b) == t.hop_distance(b, a)


class TestRoutes:
    def test_route_length_is_minimal(self):
        t = Torus3D((4, 4, 4))
        src, dst = (0, 0, 0), (2, 3, 1)
        route = t.route(src, dst)
        assert len(route) == t.hop_distance(src, dst)

    def test_route_is_connected(self):
        t = Torus3D((5, 3, 4))
        src, dst = (4, 2, 0), (1, 0, 3)
        at = src
        for frm, to in t.route(src, dst):
            assert frm == at
            # each hop is a real neighbor step
            assert t.hop_distance(frm, to) == 1
            at = to
        assert at == dst

    def test_route_to_self_is_empty(self):
        t = Torus3D((3, 3, 3))
        assert t.route((1, 1, 1), (1, 1, 1)) == []

    def test_minimal_directions_are_productive(self):
        t = Torus3D((6, 6, 6))
        src, dst = (0, 0, 0), (2, 5, 3)
        for d in t.minimal_directions(src, dst):
            nxt = t.wrap((src[0] + d[0], src[1] + d[1], src[2] + d[2]))
            assert t.hop_distance(nxt, dst) == t.hop_distance(src, dst) - 1

    def test_minimal_directions_empty_at_destination(self):
        t = Torus3D((4, 4, 4))
        assert t.minimal_directions((2, 2, 2), (2, 2, 2)) == []

    @settings(max_examples=60, deadline=None)
    @given(
        dims=st.tuples(*[st.integers(1, 6)] * 3),
        data=st.data(),
    )
    def test_property_route_minimal_and_valid(self, dims, data):
        t = Torus3D(dims)
        src = t.coord_of(data.draw(st.integers(0, t.volume - 1)))
        dst = t.coord_of(data.draw(st.integers(0, t.volume - 1)))
        route = t.route(src, dst)
        assert len(route) == t.hop_distance(src, dst)
        at = src
        for frm, to in route:
            assert frm == at
            at = to
        if route:
            assert at == dst


class TestNeighbors:
    def test_six_neighbors(self):
        t = Torus3D((4, 4, 4))
        ns = list(t.neighbors((0, 0, 0)))
        assert len(ns) == 6
        assert ((1, 0, 0), (1, 0, 0)) in ns
        assert ((-1, 0, 0), (3, 0, 0)) in ns
