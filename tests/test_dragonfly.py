"""Dragonfly topology: routing geometry, global-link plan, Valiant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.hardware.config import MachineConfig
from repro.hardware.machine import Machine
from repro.hardware.router import DragonflyNetwork
from repro.hardware.topology import Dragonfly


def small_dragonflies():
    """Strategy: a dragonfly plus two terminal ids inside it."""
    return st.tuples(
        st.integers(min_value=1, max_value=5),   # groups
        st.integers(min_value=2, max_value=4),   # routers/group
        st.integers(min_value=1, max_value=3),   # terminals/router
        st.integers(min_value=1, max_value=2),   # global links/router
        st.data(),
    )


def _build(g, a, p, h):
    if g > 1 and a * h < g - 1:
        a = -(-(g - 1) // h)  # widen groups until the plan closes
    return Dragonfly(g, a, p, h)


class TestShape:
    def test_rejects_degenerate(self):
        with pytest.raises(TopologyError):
            Dragonfly(0, 4, 2)
        with pytest.raises(TopologyError):
            Dragonfly(4, 1, 1, 1)  # a*h = 1 < g-1 = 3

    def test_rejects_unknown_routing(self):
        with pytest.raises(TopologyError):
            Dragonfly(3, 4, 2, routing="adaptive")

    def test_for_nodes_covers_and_closes_plan(self):
        for n in [1, 2, 3, 7, 16, 48, 100, 513]:
            d = Dragonfly.for_nodes(n)
            assert d.volume >= n
            assert (d.groups == 1
                    or d.routers_per_group * d.global_links >= d.groups - 1)

    def test_id_coord_roundtrip(self):
        d = Dragonfly(4, 3, 2, 1)
        for nid in range(d.volume):
            assert d.id_of(d.coord_of(nid)) == nid

    def test_router_coord_has_no_id(self):
        d = Dragonfly(3, 4, 2)
        with pytest.raises(TopologyError):
            d.id_of(("rt", 0, 0))


class TestGlobalPlan:
    def test_every_group_pair_reachable(self):
        """The wrap-around arrangement links every ordered group pair."""
        d = Dragonfly(5, 4, 2, 1)
        for g in range(d.groups):
            for g2 in range(d.groups):
                if g == g2:
                    continue
                gw = d.gateway(g, g2)
                assert 0 <= gw < d.routers_per_group
                # the gateway router really advertises that global link
                dirs = [dd for dd, _ in d.neighbors(("rt", g, gw))
                        if dd[0] == "global" and dd[1] == g2]
                assert dirs, f"no global port {g}->{g2} on router {gw}"

    def test_wraparound_pairing_is_symmetric_capable(self):
        """Following a global link lands on the peer's gateway back."""
        d = Dragonfly(5, 4, 2, 1)
        for g in range(d.groups):
            for g2 in range(d.groups):
                if g == g2:
                    continue
                frm = ("rt", g, d.gateway(g, g2))
                to = d.neighbor(frm, ("global", g2))
                assert to == ("rt", g2, d.gateway(g2, g))
                assert d.is_global_link(frm, to)

    def test_no_self_gateway(self):
        d = Dragonfly(4, 4, 2)
        with pytest.raises(TopologyError):
            d.gateway(2, 2)


class TestRouting:
    @settings(max_examples=60, deadline=None)
    @given(small_dragonflies())
    def test_route_valid_and_minimal(self, params):
        """Every route walks real links and matches hop_distance exactly."""
        g, a, p, h, data = params
        d = _build(g, a, p, h)
        src = d.coord_of(data.draw(st.integers(0, d.volume - 1)))
        dst = d.coord_of(data.draw(st.integers(0, d.volume - 1)))
        hops = d.route(src, dst)
        assert len(hops) == d.hop_distance(src, dst)
        at = src
        for frm, to in hops:
            assert frm == at
            assert to in {nb for _, nb in d.neighbors(frm)}
            at = to
        if hops:
            assert at == dst
        else:
            assert src == dst

    @settings(max_examples=60, deadline=None)
    @given(small_dragonflies())
    def test_minimal_next_hop_is_unique(self, params):
        g, a, p, h, data = params
        d = _build(g, a, p, h)
        src = d.coord_of(data.draw(st.integers(0, d.volume - 1)))
        dst = d.coord_of(data.draw(st.integers(0, d.volume - 1)))
        at = src
        while at != dst:
            dirs = d.minimal_directions(at, dst)
            assert len(dirs) == 1
            at = d.neighbor(at, dirs[0])

    def test_hop_distance_bounded_by_diameter(self):
        """Terminal-to-terminal minimal paths are at most 5 links."""
        d = Dragonfly(5, 4, 2, 1)
        for a_ in range(d.volume):
            for b_ in range(d.volume):
                assert d.hop_distance(d.coord_of(a_), d.coord_of(b_)) <= 5


class TestValiant:
    def _machine(self, seed=0):
        cfg = MachineConfig(topology="dragonfly", dragonfly_groups=5,
                            dragonfly_routers_per_group=4,
                            dragonfly_terminals_per_router=2,
                            dragonfly_global_links=1,
                            dragonfly_routing="valiant")
        return Machine(n_nodes=40, config=cfg, seed=seed)

    def test_intermediate_avoids_endpoint_groups(self):
        m = self._machine()
        topo = m.topology
        for _ in range(200):
            mid = topo.valiant_intermediate((0, 0, 0), (3, 1, 1))
            assert mid is not None and mid[0] == "rt"
            assert mid[1] not in (0, 3)

    def test_same_group_routes_minimally(self):
        topo = self._machine().topology
        assert topo.valiant_intermediate((2, 0, 0), (2, 3, 1)) is None

    def test_needs_rng(self):
        d = Dragonfly(4, 4, 2, routing="valiant")
        with pytest.raises(TopologyError):
            d.valiant_intermediate((0, 0, 0), (2, 0, 0))

    def test_deterministic_under_seed(self):
        """Same machine seed -> same misroute choices; different -> differ."""
        def draws(seed):
            topo = self._machine(seed=seed).topology
            return [topo.valiant_intermediate((0, 0, 0), (4, 2, 1))
                    for _ in range(50)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_transfer_uses_two_legs(self):
        """A valiant transfer is never shorter than the minimal route."""
        m = self._machine()
        src, dst = m.topology.coord_of(0), m.topology.coord_of(30)
        timing = m.network.transfer(0.0, src, dst, 1024)
        assert timing.hops >= m.topology.hop_distance(src, dst)

    def test_fault_falls_back_to_minimal(self):
        m = self._machine()
        src, dst = m.topology.coord_of(0), m.topology.coord_of(30)
        m.network._faulted = True
        timing = m.network.transfer(0.0, src, dst, 1024)
        assert timing.hops == m.topology.hop_distance(src, dst)


class TestNetworkLatency:
    def test_global_links_cost_more(self):
        """Inter-group latency exceeds intra-group by the optical premium."""
        cfg = MachineConfig(topology="dragonfly", dragonfly_groups=5,
                            dragonfly_routers_per_group=4,
                            dragonfly_terminals_per_router=2,
                            dragonfly_global_links=1)
        m = Machine(n_nodes=40, config=cfg)
        assert isinstance(m.network, DragonflyNetwork)
        topo = m.topology
        local = m.network.transfer(0.0, (0, 0, 0), (0, 1, 0), 64)
        # fresh machine: no shared-link contention with the first transfer
        m2 = Machine(n_nodes=40, config=cfg)
        remote_dst = (1, topo.gateway(1, 0), 0)  # same hop count, one global
        remote = m2.network.transfer(
            0.0, (0, topo.gateway(0, 1), 0), remote_dst, 64)
        premium = cfg.dragonfly_global_latency - cfg.hop_latency
        assert remote.head_arrival - local.head_arrival == pytest.approx(
            premium)

    def test_machine_rejects_unknown_topology(self):
        with pytest.raises(TopologyError):
            Machine(n_nodes=4, config=MachineConfig(topology="fat_tree"))
