"""Tests for checkpoint/restart fault tolerance and Converse timers."""

import pytest

from repro.charm import Chare, Charm
from repro.charm.checkpoint import restore_into, take_checkpoint
from repro.converse.timers import TimerService
from repro.errors import CharmError
from repro.hardware.config import tiny as tiny_config
from repro.lrts.factory import make_runtime
from repro.units import us


def fresh_charm(n_pes=8, layer="ugni"):
    conv, _ = make_runtime(n_pes=n_pes, layer=layer, config=tiny_config())
    return Charm(conv), conv


class Accumulator(Chare):
    def __init__(self):
        self.total = 0
        self.history = []

    def add(self, v):
        self.charge(1 * us)
        self.total += v
        self.history.append(v)
        if v > 1:
            self.thisProxy[(self.thisIndex + 1) % 8].add(v - 1)


class MergeableCounter(Chare):
    def __init__(self):
        self.count = 0

    def merge_restored_state(self, state):
        self.count += state["count"]


class TestCheckpoint:
    def _run_phase(self, charm, arr, start_value):
        charm.start(lambda pe: arr[0].add(start_value))
        charm.run()

    def test_checkpoint_restart_matches_uninterrupted(self):
        # uninterrupted run: two phases back to back
        charm, conv = fresh_charm()
        arr = charm.create_array(Accumulator, 8, name="acc")
        self._run_phase(charm, arr, 10)
        self._run_phase(charm, arr, 6)
        reference = sorted(
            (e.thisIndex, e.total)
            for pe in range(8)
            for e in charm.collections[arr.aid].local[pe].values())

        # checkpointed run: phase 1, checkpoint, "crash", restore, phase 2
        charm1, conv1 = fresh_charm()
        arr1 = charm1.create_array(Accumulator, 8, name="acc")
        self._run_phase(charm1, arr1, 10)
        ckpt = take_checkpoint(charm1)
        del charm1, conv1  # the crash

        charm2, conv2 = fresh_charm()
        proxies = restore_into(charm2, ckpt)
        arr2 = proxies["acc"]
        self._run_phase(charm2, arr2, 6)
        restored = sorted(
            (e.thisIndex, e.total)
            for pe in range(8)
            for e in charm2.collections[arr2.aid].local[pe].values())
        assert restored == reference

    def test_restart_on_different_pe_count(self):
        charm1, _ = fresh_charm(n_pes=8)
        arr1 = charm1.create_array(Accumulator, 8, name="acc")
        self._run_phase(charm1, arr1, 8)
        ckpt = take_checkpoint(charm1)

        charm2, _ = fresh_charm(n_pes=4)  # "restart on half the machine"
        proxies = restore_into(charm2, ckpt)
        arr2 = proxies["acc"]
        coll = charm2.collections[arr2.aid]
        assert coll.n_elements() == 8
        assert all(0 <= coll.home_of(i) < 4 for i in range(8))
        # continue computing on the smaller machine
        self._run_phase(charm2, arr2, 3)
        totals = sum(e.total for pe in range(4)
                     for e in coll.local[pe].values())
        assert totals == sum(range(1, 9)) + sum(range(1, 4))

    def test_checkpoint_requires_quiescence(self):
        charm, conv = fresh_charm()
        arr = charm.create_array(Accumulator, 8, name="acc")
        charm.start(lambda pe: arr[0].add(20))
        conv.run(until=1 * us)  # messages still in flight
        with pytest.raises(CharmError):
            take_checkpoint(charm)

    def test_restore_needs_fresh_runtime(self):
        charm, _ = fresh_charm()
        charm.create_array(Accumulator, 4, name="acc")
        ckpt = take_checkpoint(charm)
        with pytest.raises(CharmError):
            restore_into(charm, ckpt)

    def test_skip_collections(self):
        charm, _ = fresh_charm()
        charm.create_array(Accumulator, 4, name="keep")
        charm.create_array(Accumulator, 4, name="drop")
        ckpt = take_checkpoint(charm, skip=("drop",))
        assert [c.name for c in ckpt.collections] == ["keep"]

    def test_group_restore_same_size_is_exact(self):
        charm1, _ = fresh_charm(n_pes=8)
        charm1.create_group(Accumulator, name="grp")
        ckpt = take_checkpoint(charm1)
        charm2, _ = fresh_charm(n_pes=8)
        proxies = restore_into(charm2, ckpt)
        coll = charm2.collections[proxies["grp"].aid]
        assert coll.n_elements() == 8
        assert all(len(coll.local[r]) == 1 for r in range(8))

    def test_group_restore_shrink_refuses_by_default(self):
        # A group checkpointed on 8 PEs cannot silently drop elements on a
        # 4-PE restart (that lost state before); the default is an error.
        charm1, _ = fresh_charm(n_pes=8)
        charm1.create_group(Accumulator, name="grp")
        ckpt = take_checkpoint(charm1)
        charm2, _ = fresh_charm(n_pes=4)
        with pytest.raises(CharmError, match="group_shrink"):
            restore_into(charm2, ckpt)

    def test_group_restore_shrink_merges_with_hook(self):
        charm1, _ = fresh_charm(n_pes=8)
        grp = charm1.create_group(MergeableCounter, name="grp")
        coll1 = charm1.collections[grp.aid]
        for rank in range(8):
            coll1.local[rank][rank].count = rank + 1
        ckpt = take_checkpoint(charm1)

        charm2, _ = fresh_charm(n_pes=4)
        proxies = restore_into(charm2, ckpt, group_shrink="merge")
        coll = charm2.collections[proxies["grp"].aid]
        assert coll.n_elements() == 4
        # survivor r absorbs checkpointed ranks r and r+4: no state lost
        counts = {idx: coll.local[idx][idx].count for idx in range(4)}
        assert counts == {0: 1 + 5, 1: 2 + 6, 2: 3 + 7, 3: 4 + 8}
        total = sum(counts.values())
        assert total == sum(range(1, 9))

    def test_group_restore_shrink_merge_needs_hook(self):
        charm1, _ = fresh_charm(n_pes=8)
        charm1.create_group(Accumulator, name="grp")  # no merge hook
        ckpt = take_checkpoint(charm1)
        charm2, _ = fresh_charm(n_pes=4)
        with pytest.raises(CharmError, match="merge_restored_state"):
            restore_into(charm2, ckpt, group_shrink="merge")

    def test_group_restore_cannot_grow(self):
        charm1, _ = fresh_charm(n_pes=4)
        charm1.create_group(Accumulator, name="grp")
        ckpt = take_checkpoint(charm1)
        charm2, _ = fresh_charm(n_pes=8)
        with pytest.raises(CharmError):
            restore_into(charm2, ckpt)

    def test_checkpoint_metadata(self):
        charm, _ = fresh_charm()
        arr = charm.create_array(Accumulator, 6, name="acc")
        self._run_phase(charm, arr, 4)
        ckpt = take_checkpoint(charm)
        assert ckpt.n_pes == 8
        assert ckpt.n_elements == 6
        assert ckpt.collections[0].state_bytes() > 0

    def test_restore_preserves_sim_time(self):
        # The restored engine used to restart at t=0, wrecking every
        # post-restart timeline and time-to-recover measurement.
        charm1, _ = fresh_charm()
        arr1 = charm1.create_array(Accumulator, 8, name="acc")
        self._run_phase(charm1, arr1, 10)
        ckpt = take_checkpoint(charm1)
        assert ckpt.sim_time > 0

        charm2, _ = fresh_charm()
        restore_into(charm2, ckpt)
        assert charm2.engine.now == ckpt.sim_time

        charm3, _ = fresh_charm()
        restore_into(charm3, ckpt, restore_clock=False)
        assert charm3.engine.now == 0.0

    def test_restore_routes_placement_through_mapper(self):
        # The old code defined a mapper closure and never called it; a
        # custom mapper must now actually decide placement, and the
        # location manager must agree with the per-PE element tables.
        charm1, _ = fresh_charm(n_pes=8)
        arr1 = charm1.create_array(Accumulator, 8, name="acc")
        self._run_phase(charm1, arr1, 6)
        ckpt = take_checkpoint(charm1)

        def everything_on_pe1(cc, indices, n_pes):
            return {i: 1 for i in indices}

        charm2, _ = fresh_charm(n_pes=4)
        proxies = restore_into(charm2, ckpt, map=everything_on_pe1)
        coll = charm2.collections[proxies["acc"].aid]
        assert all(coll.home_of(i) == 1 for i in range(8))
        assert len(coll.local[1]) == 8
        assert all(not coll.local[r] for r in (0, 2, 3))

    def test_restore_rebalance_map_balances_by_measured_load(self):
        from repro.charm.loadbalancer import restore_rebalance_map

        charm1, _ = fresh_charm(n_pes=8)
        arr1 = charm1.create_array(Accumulator, 8, name="acc")
        coll1 = charm1.collections[arr1.aid]
        # skew the measured loads: element 0 is as heavy as all the rest
        for idx in range(8):
            coll1.local[coll1.home_of(idx)][idx]._lb_load = \
                7.0 if idx == 0 else 1.0
        ckpt = take_checkpoint(charm1)

        charm2, _ = fresh_charm(n_pes=2)
        proxies = restore_into(charm2, ckpt, map=restore_rebalance_map)
        coll = charm2.collections[proxies["acc"].aid]
        loads = [sum(e._lb_load for e in coll.local[r].values())
                 for r in range(2)]
        assert loads == [7.0, 7.0]  # greedy: heavy one alone, rest together

    def test_restore_rejects_invalid_mapper(self):
        charm1, _ = fresh_charm(n_pes=4)
        charm1.create_array(Accumulator, 4, name="acc")
        ckpt = take_checkpoint(charm1)
        charm2, _ = fresh_charm(n_pes=2)
        with pytest.raises(CharmError, match="restore map"):
            restore_into(charm2, ckpt, map=lambda cc, idxs, n: {i: 99 for i in idxs})

    def test_checkpoint_at_quiescence_tolerates_armed_timers(self):
        # The composition bug this PR exists for: with a fault schedule
        # armed, the event heap is never empty, so drained-mode
        # checkpointing was impossible for exactly the runs that need it.
        from repro.faults import NodeCrash

        conv, _ = make_runtime(n_pes=8, layer="ugni", config=tiny_config(),
                               fault_schedule=[NodeCrash(at=1.0, node_id=1)])
        charm = Charm(conv)
        arr = charm.create_array(Accumulator, 8, name="acc")
        with pytest.raises(CharmError):
            take_checkpoint(charm)  # drained mode still refuses
        ckpt = take_checkpoint(charm, at_quiescence=True)
        assert ckpt.n_elements == 8

    def test_checkpoint_captures_rng_and_restore_replays_it(self):
        charm1, conv1 = fresh_charm()
        charm1.create_array(Accumulator, 4, name="acc")
        stream = conv1.machine.rng.stream("app")
        before = [stream.random() for _ in range(3)]
        ckpt = take_checkpoint(charm1)
        tail1 = [stream.random() for _ in range(5)]

        charm2, conv2 = fresh_charm()
        restore_into(charm2, ckpt)
        tail2 = [conv2.machine.rng.stream("app").random() for _ in range(5)]
        assert tail2 == tail1  # continues exactly where the checkpoint left off
        assert before  # (draws before the checkpoint are not replayed)

    def test_deep_copy_isolation(self):
        """Mutating live elements after a checkpoint must not change it."""
        charm, _ = fresh_charm()
        arr = charm.create_array(Accumulator, 4, name="acc")
        self._run_phase(charm, arr, 3)
        ckpt = take_checkpoint(charm)
        coll = charm.collections[arr.aid]
        elem = coll.local[coll.home_of(0)][0]
        elem.history.append("tampered")
        cc = ckpt.collections[0]
        assert "tampered" not in cc.states[0]["history"]


class TestTimers:
    def test_one_shot_fires_on_pe(self):
        charm, conv = fresh_charm()
        timers = TimerService(conv)
        fired = []
        timers.call_after(5 * us, 3, lambda pe: fired.append((pe.rank, pe.vtime)))
        conv.run()
        assert len(fired) == 1
        assert fired[0][0] == 3
        assert fired[0][1] >= 5 * us

    def test_cancel_before_fire(self):
        charm, conv = fresh_charm()
        timers = TimerService(conv)
        fired = []
        h = timers.call_after(5 * us, 0, lambda pe: fired.append(1))
        h.cancel()
        conv.run()
        assert fired == []

    def test_periodic_fires_until_cancelled(self):
        charm, conv = fresh_charm()
        timers = TimerService(conv)
        fired = []

        def tick(pe):
            fired.append(pe.vtime)
            if len(fired) == 4:
                handle.cancel()

        handle = timers.call_periodic(10 * us, 0, tick)
        conv.run(max_events=10000)
        assert len(fired) == 4
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(g >= 10 * us * 0.99 for g in gaps)

    def test_timer_callback_can_send_messages(self):
        charm, conv = fresh_charm()
        timers = TimerService(conv)
        arr = charm.create_array(Accumulator, 8, name="acc")
        coll = charm.collections[arr.aid]

        def kick(pe):
            # runs in PE context: proxy sends are legal
            charm._current_pe = pe
            try:
                arr[0].add(1)
            finally:
                charm._current_pe = None

        timers.call_after(3 * us, 0, kick)
        conv.run()
        assert coll.local[coll.home_of(0)][0].total == 1

    def test_negative_delay_rejected(self):
        charm, conv = fresh_charm()
        timers = TimerService(conv)
        with pytest.raises(CharmError):
            timers.call_after(-1.0, 0, lambda pe: None)
        with pytest.raises(CharmError):
            timers.call_periodic(0.0, 0, lambda pe: None)
