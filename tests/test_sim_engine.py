"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Event
from repro.sim.process import Process, all_of, any_of


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.call_after(3e-6, fired.append, "c")
        eng.call_after(1e-6, fired.append, "a")
        eng.call_after(2e-6, fired.append, "b")
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        eng = Engine()
        fired = []
        for tag in range(10):
            eng.call_at(5e-6, fired.append, tag)
        eng.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.call_after(7e-6, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [pytest.approx(7e-6)]

    def test_call_soon_runs_at_current_time(self):
        eng = Engine()
        eng.call_after(2e-6, lambda: eng.call_soon(lambda: times.append(eng.now)))
        times = []
        eng.run()
        assert times == [pytest.approx(2e-6)]

    def test_scheduling_in_past_rejected(self):
        eng = Engine()
        eng.call_after(1e-6, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(0.5e-6, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_after(-1e-9, lambda: None)

    def test_non_finite_time_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_at(math.inf, lambda: None)

    def test_cancel_prevents_firing(self):
        eng = Engine()
        fired = []
        h = eng.call_after(1e-6, fired.append, "x")
        h.cancel()
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        h = eng.call_after(1e-6, lambda: None)
        h.cancel()
        h.cancel()
        eng.run()

    def test_run_until_stops_clock_at_horizon(self):
        eng = Engine()
        fired = []
        eng.call_after(5e-6, fired.append, "late")
        t = eng.run(until=2e-6)
        assert t == pytest.approx(2e-6)
        assert fired == []
        eng.run()
        assert fired == ["late"]

    def test_run_until_advances_clock_when_drained(self):
        eng = Engine()
        eng.call_after(1e-6, lambda: None)
        t = eng.run(until=9e-6)
        assert t == pytest.approx(9e-6)

    def test_stop_exits_run_loop(self):
        eng = Engine()
        fired = []
        eng.call_after(1e-6, lambda: (fired.append(1), eng.stop()))
        eng.call_after(2e-6, fired.append, 2)
        eng.run()
        assert fired == [1]

    def test_max_events_guard(self):
        eng = Engine()

        def rearm():
            eng.call_after(1e-9, rearm)

        rearm()
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_max_events_boundary_is_exact(self):
        """The guard fires *before* the offending event: run(max_events=N)
        executes exactly N callbacks and the counter agrees (regression:
        the counter used to be bumped before the guard, overcounting by
        one while executing one fewer)."""
        eng = Engine()
        count = []

        def rearm():
            count.append(1)
            eng.call_after(1e-9, rearm)

        eng.call_after(1e-9, rearm)
        with pytest.raises(SimulationError):
            eng.run(max_events=10)
        assert len(count) == 10
        assert eng.events_executed == 10

    def test_max_events_allows_exactly_n(self):
        eng = Engine()
        for _ in range(10):
            eng.call_after(1e-6, lambda: None)
        eng.run(max_events=10)  # exactly at the limit: no raise
        assert eng.events_executed == 10

    def test_events_executed_counter(self):
        eng = Engine()
        for _ in range(5):
            eng.call_after(1e-6, lambda: None)
        eng.run()
        assert eng.events_executed == 5

    def test_peek_skips_cancelled(self):
        eng = Engine()
        h = eng.call_after(1e-6, lambda: None)
        eng.call_after(2e-6, lambda: None)
        h.cancel()
        assert eng.peek() == pytest.approx(2e-6)

    def test_peek_empty_is_inf(self):
        assert Engine().peek() == math.inf


class TestEvent:
    def test_succeed_delivers_value_to_callbacks(self):
        eng = Engine()
        ev = eng.event()
        got = []
        ev.add_callback(got.append)
        ev.succeed(42)
        assert got == [42]

    def test_callback_after_trigger_runs_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("v")
        got = []
        ev.add_callback(got.append)
        assert got == ["v"]

    def test_double_trigger_raises(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_timeout_event(self):
        eng = Engine()
        ev = eng.timeout(4e-6, "done")
        got = []
        ev.add_callback(lambda v: got.append((eng.now, v)))
        eng.run()
        assert got == [(pytest.approx(4e-6), "done")]


class TestProcess:
    def test_sleep_and_resume(self):
        eng = Engine()
        marks = []

        def proc():
            marks.append(eng.now)
            yield 2e-6
            marks.append(eng.now)
            yield 3e-6
            marks.append(eng.now)

        Process(eng, proc())
        eng.run()
        assert marks == [pytest.approx(0.0), pytest.approx(2e-6), pytest.approx(5e-6)]

    def test_wait_event_returns_value(self):
        eng = Engine()
        ev = eng.event()
        got = []

        def proc():
            v = yield ev
            got.append(v)

        Process(eng, proc())
        eng.call_after(1e-6, ev.succeed, "payload")
        eng.run()
        assert got == ["payload"]

    def test_process_result_and_done_event(self):
        eng = Engine()

        def proc():
            yield 1e-6
            return 123

        p = Process(eng, proc())
        eng.run()
        assert p.done
        assert p.result == 123
        assert p.done_event.value == 123

    def test_process_joins_process(self):
        eng = Engine()
        order = []

        def child():
            yield 5e-6
            order.append("child")
            return "c"

        def parent():
            v = yield Process(eng, child())
            order.append(f"parent:{v}")

        Process(eng, parent())
        eng.run()
        assert order == ["child", "parent:c"]

    def test_non_generator_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Process(eng, lambda: None)  # type: ignore[arg-type]

    def test_negative_yield_rejected(self):
        eng = Engine()

        def proc():
            yield -1.0

        Process(eng, proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_yield_none_reschedules_same_time(self):
        eng = Engine()
        times = []

        def proc():
            times.append(eng.now)
            yield None
            times.append(eng.now)

        Process(eng, proc())
        eng.run()
        assert times == [0.0, 0.0]


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        eng = Engine()
        evs = [eng.timeout(i * 1e-6, i) for i in (3, 1, 2)]
        done = all_of(eng, evs)
        got = []
        done.add_callback(lambda v: got.append((eng.now, v)))
        eng.run()
        assert got == [(pytest.approx(3e-6), [3, 1, 2])]

    def test_all_of_empty_triggers_immediately(self):
        eng = Engine()
        done = all_of(eng, [])
        eng.run()
        assert done.triggered and done.value == []

    def test_any_of_returns_first_winner(self):
        eng = Engine()
        evs = [eng.timeout(5e-6, "slow"), eng.timeout(1e-6, "fast")]
        first = any_of(eng, evs)
        got = []
        first.add_callback(got.append)
        eng.run()
        assert got == [(1, "fast")]

    def test_any_of_empty_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            any_of(eng, [])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            eng = Engine()
            out = []

            def proc(tag, delay):
                for i in range(3):
                    yield delay
                    out.append((round(eng.now * 1e9), tag, i))

            for tag, d in [("a", 1.1e-6), ("b", 0.7e-6), ("c", 1.3e-6)]:
                Process(eng, proc(tag, d))
            eng.run()
            return out

        assert build() == build()
