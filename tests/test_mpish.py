"""Tests for the MPI subset: matching, protocols, ordering, collectives."""

import pytest

from repro.hardware import Machine
from repro.hardware.config import tiny as tiny_config
from repro.mpish import ANY, MpiWorld
from repro.mpish.collectives import allreduce, barrier, bcast, reduce
from repro.mpish.comm import recv, send, wait
from repro.mpish.matching import MatchEngine, Arrival
from repro.mpish.udreg import UdregCache
from repro.sim.process import Process
from repro.units import KB, MB, us


def make_world(n_nodes=2, cores_per_node=2, seed=0):
    m = Machine(n_nodes=n_nodes, config=tiny_config(cores_per_node=cores_per_node),
                seed=seed)
    return m, MpiWorld(m)


class TestMatchEngine:
    def _eng(self):
        return MatchEngine(0, tiny_config())

    def _arr(self, src=1, tag=5, seq=0):
        return Arrival(src, 0, tag, 64, None, 0.0, seq=seq)

    def test_exact_match(self):
        eng = self._eng()
        eng.add_unexpected(self._arr(src=1, tag=5))
        arr, _ = eng.match_unexpected(1, 5)
        assert arr is not None
        assert eng.unexpected_depth == 0

    def test_wildcard_source_and_tag(self):
        eng = self._eng()
        eng.add_unexpected(self._arr(src=3, tag=9))
        arr, _ = eng.match_unexpected(ANY, ANY)
        assert arr is not None and arr.src == 3

    def test_no_match_leaves_queue(self):
        eng = self._eng()
        eng.add_unexpected(self._arr(src=1, tag=5))
        arr, _ = eng.match_unexpected(2, 5)
        assert arr is None
        assert eng.unexpected_depth == 1

    def test_fifo_among_matches(self):
        eng = self._eng()
        a = self._arr(src=1, tag=5)
        b = self._arr(src=1, tag=5)
        eng.add_unexpected(a)
        eng.add_unexpected(b)
        got, _ = eng.match_unexpected(1, 5)
        assert got is a

    def test_scan_cost_grows_with_queue_depth(self):
        eng = self._eng()
        for _ in range(50):
            eng.add_unexpected(self._arr(src=1, tag=1))
        # match something at the back
        eng.add_unexpected(self._arr(src=2, tag=2))
        _, deep_cost = eng.match_unexpected(2, 2)
        eng2 = self._eng()
        eng2.add_unexpected(self._arr(src=2, tag=2))
        _, shallow_cost = eng2.match_unexpected(2, 2)
        assert deep_cost > shallow_cost

    def test_probe_does_not_pop(self):
        eng = self._eng()
        eng.add_unexpected(self._arr())
        arr, _ = eng.match_unexpected(ANY, ANY, pop=False)
        assert arr is not None
        assert eng.unexpected_depth == 1


class TestUdreg:
    def test_hit_after_miss(self):
        c = UdregCache(tiny_config(), capacity=4)
        miss = c.lookup("buf", 64 * KB)
        hit = c.lookup("buf", 64 * KB)
        assert miss > hit
        assert c.hit_rate == pytest.approx(0.5)

    def test_smaller_request_hits_existing(self):
        c = UdregCache(tiny_config())
        c.lookup("buf", 64 * KB)
        assert c.lookup("buf", 4 * KB) == pytest.approx(
            tiny_config().udreg_lookup_cpu)

    def test_larger_request_reregisters(self):
        cfg = tiny_config()
        c = UdregCache(cfg)
        c.lookup("buf", 4 * KB)
        cost = c.lookup("buf", 64 * KB)
        assert cost > cfg.t_register(64 * KB)

    def test_eviction(self):
        c = UdregCache(tiny_config(), capacity=2)
        c.lookup("a", 1024)
        c.lookup("b", 1024)
        c.lookup("c", 1024)
        assert c.evictions == 1


class TestPointToPoint:
    def _pingpong(self, size, iters=3, same_buf=True, n_nodes=2):
        m, world = make_world(n_nodes=n_nodes,
                              cores_per_node=1 if n_nodes > 1 else 2)
        lat = []

        def rank0():
            for i in range(iters):
                t0 = m.engine.now
                key = "b0" if same_buf else None
                yield from send(world, 0, 1, tag=0, nbytes=size, buf_key=key)
                yield from recv(world, 0, src=1, tag=1,
                                buf_key="b0" if same_buf else None)
                lat.append((m.engine.now - t0) / 2)

        def rank1():
            for i in range(iters):
                yield from recv(world, 1, src=0, tag=0,
                                buf_key="b1" if same_buf else None)
                yield from send(world, 1, 0, tag=1, nbytes=size,
                                buf_key="b1" if same_buf else None)

        Process(m.engine, rank0())
        Process(m.engine, rank1())
        m.engine.run(max_events=100000)
        assert len(lat) == iters
        return lat[-1]  # steady state

    def test_small_message_latency(self):
        """Pure MPI 8B one-way ≈ 1.4-2us (a bit above pure uGNI's 1.2)."""
        lat = self._pingpong(8)
        assert 1.2 * us < lat < 2.5 * us

    def test_latency_monotone_in_size(self):
        sizes = [8, 512, 4 * KB, 64 * KB, 1 * MB]
        lats = [self._pingpong(s) for s in sizes]
        assert all(b > a for a, b in zip(lats, lats[1:]))

    def test_rendezvous_same_buffer_faster_than_fresh(self):
        """Fig 9a: MPI same send/recv buffer beats different buffers >8K."""
        same = self._pingpong(64 * KB, same_buf=True)
        diff = self._pingpong(64 * KB, same_buf=False)
        assert diff > same * 1.2

    def test_intranode_delivery(self):
        lat = self._pingpong(4 * KB, n_nodes=1)
        assert lat > 0

    def test_intranode_large_uses_xpmem_single_copy(self):
        m, world = make_world(n_nodes=1, cores_per_node=2)
        done = []

        def rank0():
            yield from send(world, 0, 1, tag=0, nbytes=256 * KB)

        def rank1():
            arr = yield from recv(world, 1, src=0, tag=0)
            done.append(m.engine.now)

        Process(m.engine, rank0())
        Process(m.engine, rank1())
        m.engine.run()
        assert done
        # single copy: latency ≈ xpmem_sync + one memcpy, well under 2x memcpy
        assert done[0] < m.config.xpmem_sync_cpu + 2 * m.config.t_memcpy(256 * KB)

    def test_payload_arrives_intact(self):
        m, world = make_world()
        got = []

        def sender():
            yield from send(world, 0, 2, tag=7, nbytes=100,
                            payload={"k": [1, 2, 3]})

        def receiver():
            arr = yield from recv(world, 2, src=0, tag=7)
            got.append(arr.payload)

        Process(m.engine, sender())
        Process(m.engine, receiver())
        m.engine.run()
        assert got == [{"k": [1, 2, 3]}]

    def test_unexpected_then_late_recv(self):
        m, world = make_world()
        got = []

        def sender():
            yield from send(world, 0, 2, tag=1, nbytes=64, payload="early")

        def receiver():
            yield 50 * us  # message arrives long before the recv posts
            arr = yield from recv(world, 2, src=0, tag=1)
            got.append((arr.payload, m.engine.now))

        Process(m.engine, sender())
        Process(m.engine, receiver())
        m.engine.run()
        assert got and got[0][0] == "early"
        assert got[0][1] >= 50 * us

    def test_nonovertaking_order_same_pair(self):
        """Messages of wildly different sizes still arrive in send order."""
        m, world = make_world()
        got = []

        def sender():
            # big eager first (slow), tiny second (fast): order must hold
            yield from wait(world, world.isend(0, 2, 0, 8 * KB, payload="big")[0])
            yield from wait(world, world.isend(0, 2, 0, 8, payload="small")[0])

        def receiver():
            for _ in range(2):
                arr = yield from recv(world, 2, src=0, tag=0)
                got.append(arr.payload)

        Process(m.engine, sender())
        Process(m.engine, receiver())
        m.engine.run(max_events=100000)
        assert got == ["big", "small"]

    def test_isend_returns_before_delivery(self):
        m, world = make_world()
        req, cpu = world.isend(0, 2, 0, 64, payload="x")
        assert req.completed  # eager: buffered completion
        assert world.unexpected_count(2) == 0  # not yet arrived
        m.engine.run()
        assert world.unexpected_count(2) == 1

    def test_on_unexpected_hook_fires(self):
        m, world = make_world()
        seen = []
        world.on_unexpected[2] = seen.append
        world.isend(0, 2, 0, 64)
        m.engine.run()
        assert len(seen) == 1 and seen[0].dst == 2


class TestCollectives:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_bcast_reaches_everyone(self, n):
        m, world = make_world(n_nodes=4, cores_per_node=2)
        results = {}

        def ranker(r):
            val = yield from bcast(world, r, root=0, n=n, nbytes=64,
                                   payload="hello" if r == 0 else None)
            results[r] = val

        for r in range(n):
            Process(m.engine, ranker(r))
        m.engine.run(max_events=100000)
        assert results == {r: "hello" for r in range(n)}

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_reduce_sums(self, n):
        m, world = make_world(n_nodes=4, cores_per_node=2)
        out = {}

        def ranker(r):
            res = yield from reduce(world, r, root=0, n=n, nbytes=8,
                                    value=r + 1, op=lambda a, b: a + b)
            out[r] = res

        for r in range(n):
            Process(m.engine, ranker(r))
        m.engine.run(max_events=100000)
        assert out[0] == n * (n + 1) // 2
        assert all(out[r] is None for r in range(1, n))

    def test_allreduce(self):
        n = 6
        m, world = make_world(n_nodes=4, cores_per_node=2)
        out = {}

        def ranker(r):
            res = yield from allreduce(world, r, n=n, nbytes=8, value=1,
                                       op=lambda a, b: a + b)
            out[r] = res

        for r in range(n):
            Process(m.engine, ranker(r))
        m.engine.run(max_events=100000)
        assert out == {r: n for r in range(n)}

    def test_barrier_synchronizes(self):
        n = 4
        m, world = make_world(n_nodes=4, cores_per_node=1)
        release = []

        def ranker(r):
            yield (r + 1) * 10 * us  # staggered arrivals
            yield from barrier(world, r, n)
            release.append(m.engine.now)

        for r in range(n):
            Process(m.engine, ranker(r))
        m.engine.run(max_events=100000)
        assert len(release) == n
        # nobody leaves before the last arrival
        assert min(release) >= n * 10 * us
