"""Per-instance C-core binding: subclass overrides are never bypassed.

The compiled slab core is bound method-by-method onto plain ``Engine``
instances only.  A subclass that overrides *any* forwarded method — even
just ``post_soon`` — must run the pure-Python paths throughout, so its
override sees every call, including internal engine traffic.  A
class-level monkeypatch on ``Engine`` itself must disable binding the
same way.  ``REPRO_PURE_ENGINE`` selects the backend explicitly: ``=1``
forces pure Python, ``=0`` (and every other falsey spelling) keeps the
C core — the flag is parsed by ``env_flag``, not string truthiness.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.sim import _speed
from repro.sim.engine import Engine

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

needs_core = pytest.mark.skipif(
    _speed.core is None,
    reason=f"C core unavailable: {_speed.build_error}")


def run_workload(eng):
    """A small mixed workload; returns the observable firing log."""
    log = []

    def tick(tag):
        log.append((round(eng.now * 1e9), tag))

    eng.call_after(3e-9, tick, "a")
    eng.call_soon(tick, "b")
    h = eng.call_after(5e-9, tick, "cancelled")
    eng.call_after(1e-9, h.cancel)
    eng.post_after(2e-9, tick, "c")
    eng.post_soon(tick, "d")
    eng.run()
    return log


class TestSubclassBinding:
    def test_plain_engine_binds_core(self):
        eng = Engine()
        if _speed.core is not None:
            assert eng._core is not None
        else:
            assert eng._core is None

    def test_subclass_overriding_post_soon_runs_pure(self):
        seen = []

        class CountingEngine(Engine):
            def post_soon(self, fn, *args):
                seen.append(fn)
                return super().post_soon(fn, *args)

        eng = CountingEngine()
        # the core must NOT be bound: binding it would route post_soon
        # (and everything else) around the override
        assert eng._core is None
        log = run_workload(eng)
        assert seen, "the post_soon override never saw the call"
        assert log == run_workload(Engine())

    def test_subclass_overriding_post_at_node_runs_pure(self):
        posted = []

        class NodeTap(Engine):
            def post_at_node(self, node_id, t, fn, *args):
                posted.append(node_id)
                return super().post_at_node(node_id, t, fn, *args)

        eng = NodeTap()
        assert eng._core is None
        fired = []
        eng.call_at_node(3, 1e-9, fired.append, "x")
        eng.run()
        assert fired == ["x"]

    def test_passthrough_subclass_runs_pure(self):
        class PureEngine(Engine):
            """No overrides at all — still a subclass, still pure."""

        assert PureEngine()._core is None

    @needs_core
    def test_class_monkeypatch_disables_binding(self, monkeypatch):
        calls = []
        orig = Engine.post_soon

        def patched(self, fn, *args):
            calls.append(fn)
            return orig(self, fn, *args)

        monkeypatch.setattr(Engine, "post_soon", patched)
        eng = Engine()
        assert eng._core is None
        eng.post_soon(calls.append, "payload")
        eng.run()
        assert len(calls) == 2  # the patch saw the post, then the event ran

    def test_backends_agree(self):
        class PureEngine(Engine):
            pass

        assert run_workload(Engine()) == run_workload(PureEngine())


def _core_loaded_in_subprocess(flag_value):
    """Import the engine in a child with REPRO_PURE_ENGINE set; report
    whether a fresh Engine instance actually bound the C core."""
    env = dict(os.environ, PYTHONPATH=SRC)
    if flag_value is None:
        env.pop("REPRO_PURE_ENGINE", None)
    else:
        env["REPRO_PURE_ENGINE"] = flag_value
    out = subprocess.run(
        [sys.executable, "-c",
         "from repro.sim.engine import Engine; "
         "print('bound' if Engine()._core is not None else 'pure')"],
        env=env, capture_output=True, text=True, timeout=180)
    assert out.returncode == 0, out.stderr
    return out.stdout.strip() == "bound"


class TestPureEngineFlag:
    @needs_core
    def test_flag_unset_uses_core(self):
        assert _core_loaded_in_subprocess(None)

    @needs_core
    @pytest.mark.parametrize("value", ["0", "", "false", "no", "off"])
    def test_falsey_values_keep_core(self, value):
        # the original bug: any non-empty string (including "0")
        # silently disabled the C core
        assert _core_loaded_in_subprocess(value)

    @pytest.mark.parametrize("value", ["1", "true", "yes"])
    def test_truthy_values_force_pure(self, value):
        assert not _core_loaded_in_subprocess(value)
