"""Tests for the Charm++ programming layer."""

import pytest

from repro.charm import Chare, Charm
from repro.errors import CharmError
from repro.hardware.config import tiny as tiny_config
from repro.lrts.factory import make_runtime
from repro.units import us


def charm_runtime(n_pes=8, cores_per_node=4, layer="ugni", **kw):
    conv, lrts = make_runtime(n_pes=n_pes, layer=layer,
                              config=tiny_config(cores_per_node=cores_per_node),
                              **kw)
    return Charm(conv), conv, lrts


class Counter(Chare):
    def __init__(self):
        self.count = 0
        self.got = []

    def bump(self, v=1, sender=None):
        self.count += v
        self.got.append(sender)


class TestArrays:
    def test_block_map_distributes_elements(self):
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(Counter, 8)
        coll = charm.collections[arr.aid]
        sizes = [len(coll.local[r]) for r in range(4)]
        assert sizes == [2, 2, 2, 2]

    def test_round_robin_map(self):
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(Counter, 8, map="round_robin")
        coll = charm.collections[arr.aid]
        assert coll.home_of(0) == 0 and coll.home_of(1) == 1
        assert coll.home_of(4) == 0

    def test_point_to_point_invocation(self):
        charm, conv, _ = charm_runtime()
        arr = charm.create_array(Counter, 8)
        charm.start(lambda pe: arr[5].bump(3, sender="main"))
        charm.run()
        coll = charm.collections[arr.aid]
        elem = coll.local[coll.home_of(5)][5]
        assert elem.count == 3
        assert elem.got == ["main"]

    def test_chained_invocations_ring(self):
        class Ring(Chare):
            def __init__(self, n):
                self.n = n

            def pass_token(self, hops):
                self.charge(1 * us)
                if hops > 0:
                    self.thisProxy[(self.thisIndex + 1) % self.n].pass_token(hops - 1)
                else:
                    done.append(self.now())

        done = []
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(Ring, 8, args=(8,))
        charm.start(lambda pe: arr[0].pass_token(16))
        charm.run()
        assert len(done) == 1
        assert done[0] > 17 * us  # 17 executions × 1us work + transit

    def test_broadcast_reaches_all_elements(self):
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(Counter, 10)
        charm.start(lambda pe: arr.bump(7))
        charm.run()
        coll = charm.collections[arr.aid]
        counts = [e.count for pe in range(4) for e in coll.local[pe].values()]
        assert counts == [7] * 10

    def test_group_one_element_per_pe(self):
        charm, conv, _ = charm_runtime(n_pes=6)
        grp = charm.create_group(Counter)
        coll = charm.collections[grp.aid]
        assert all(len(coll.local[r]) == 1 for r in range(6))
        charm.start(lambda pe: grp[3].bump())
        charm.run()
        assert coll.local[3][3].count == 1

    def test_unknown_entry_method_raises(self):
        charm, conv, _ = charm_runtime()
        arr = charm.create_array(Counter, 2)
        charm.start(lambda pe: arr[0].no_such_method())
        with pytest.raises(CharmError):
            charm.run()

    def test_proxy_call_outside_handler_rejected(self):
        charm, conv, _ = charm_runtime()
        arr = charm.create_array(Counter, 2)
        with pytest.raises(CharmError):
            arr[0].bump()

    def test_non_chare_class_rejected(self):
        charm, conv, _ = charm_runtime()
        with pytest.raises(CharmError):
            charm.create_array(object, 4)  # type: ignore[arg-type]

    def test_message_size_estimation_scales(self):
        from repro.charm.chare import estimate_size
        import numpy as np

        small = estimate_size((1, 2.0), {})
        big = estimate_size((np.zeros(10000),), {})
        assert big > small
        assert big >= 80000


class TestReductions:
    class Worker(Chare):
        def __init__(self):
            self.result = None

        def work(self):
            self.contribute(self.thisIndex + 1, "sum", self.thisProxy[0].report)

        def work_max(self):
            self.contribute(self.thisIndex, "max", self.thisProxy[0].report)

        def report(self, value):
            results.append((value, self.now()))


    def test_sum_reduction(self):
        global results
        results = []
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(self.Worker, 10)
        charm.start(lambda pe: arr.work())
        charm.run()
        assert len(results) == 1
        assert results[0][0] == sum(range(1, 11))

    def test_max_reduction(self):
        global results
        results = []
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(self.Worker, 7)
        charm.start(lambda pe: arr.work_max())
        charm.run()
        assert results[0][0] == 6

    def test_consecutive_reduction_rounds(self):
        global results
        results = []
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(self.Worker, 8)

        def go(pe):
            arr.work()

        charm.start(go)
        charm.run()
        # second round after the first completes
        charm.start(go, at=conv.engine.now)
        charm.run()
        assert [r[0] for r in results] == [36, 36]

    def test_reduction_with_single_element(self):
        global results
        results = []
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(self.Worker, 1)
        charm.start(lambda pe: arr.work())
        charm.run()
        assert results[0][0] == 1

    def test_unknown_op_rejected(self):
        charm, conv, _ = charm_runtime()

        class Bad(Chare):
            def go(self):
                self.contribute(1, "median", self.thisProxy[0].go)

        arr = charm.create_array(Bad, 2)
        charm.start(lambda pe: arr[0].go())
        with pytest.raises(CharmError):
            charm.run()


class TestMigration:
    class Mover(Chare):
        def __init__(self):
            self.inbox = []

        def hop(self, dst):
            self.migrate_to(dst, state_bytes=2048)

        def ping(self, v):
            self.inbox.append(v)

    def test_migration_moves_element(self):
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(self.Mover, 4)
        coll = charm.collections[arr.aid]
        src_pe = coll.home_of(0)
        charm.start(lambda pe: arr[0].hop(3), pe=src_pe)
        charm.run()
        assert coll.home_of(0) == 3
        assert 0 in coll.local[3]
        assert 0 not in coll.local[src_pe]

    def test_messages_after_migration_arrive(self):
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(self.Mover, 4)
        coll = charm.collections[arr.aid]

        def script(pe):
            arr[0].hop(3)
            arr[0].ping("after")  # location already updated -> straight to 3

        charm.start(script, pe=coll.home_of(0))
        charm.run()
        elem = coll.local[3][0]
        assert elem.inbox == ["after"]

    def test_in_flight_messages_forwarded(self):
        """A message racing a migration must still be delivered exactly once."""
        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(self.Mover, 4)
        coll = charm.collections[arr.aid]
        home = coll.home_of(0)

        def sender(pe):
            arr[0].ping("racer")

        def mover(pe):
            arr[0].hop(3)

        # the ping is sent from PE 2 while the element migrates away
        charm.start(mover, pe=home)
        charm.start(sender, pe=2)
        charm.run()
        elem = coll.local[coll.home_of(0)][0]
        assert elem.inbox == ["racer"]

    def test_group_elements_cannot_migrate(self):
        charm, conv, _ = charm_runtime(n_pes=4)
        grp = charm.create_group(self.Mover)
        charm.start(lambda pe: grp[0].hop(2))
        with pytest.raises(CharmError):
            charm.run()

    def test_lb_load_accumulates(self):
        class Busy(Chare):
            def spin(self):
                self.charge(5 * us)

        charm, conv, _ = charm_runtime(n_pes=2)
        arr = charm.create_array(Busy, 2)
        charm.start(lambda pe: (arr[0].spin(), arr[0].spin()))
        charm.run()
        coll = charm.collections[arr.aid]
        elem = coll.local[coll.home_of(0)][0]
        assert elem._lb_load == pytest.approx(10 * us)


class TestQuiescence:
    def test_quiescence_fires_after_task_tree_completes(self):
        class Task(Chare):
            def run_task(self, depth):
                self.charge(2 * us)
                if depth > 0:
                    for c in range(2):
                        self.thisProxy[(self.thisIndex * 2 + c + 1)
                                       % 16].run_task(depth - 1)

        charm, conv, _ = charm_runtime(n_pes=4)
        arr = charm.create_array(Task, 16)
        q_time = []

        def go(pe):
            arr[0].run_task(4)
            charm.start_quiescence(q_time.append)

        charm.start(go)
        charm.run(max_events=10**6)
        assert len(q_time) == 1
        # quiescence must not fire before all 31 tasks ran
        assert charm.app_executes == 31
        assert q_time[0] > 0

    def test_quiescence_on_both_layers(self):
        for layer in ("ugni", "mpi"):
            class Task(Chare):
                def go(self, n):
                    if n:
                        self.thisProxy[(self.thisIndex + 1) % 8].go(n - 1)

            charm, conv, _ = charm_runtime(n_pes=4, layer=layer)
            arr = charm.create_array(Task, 8)
            fired = []

            def boot(pe):
                arr[0].go(20)
                charm.start_quiescence(fired.append)

            charm.start(boot)
            charm.run(max_events=10**6)
            assert len(fired) == 1


class TestLayerTransparency:
    """Same Charm program, both machine layers (the paper's methodology)."""

    def test_identical_results_different_timing(self):
        class Accum(Chare):
            def __init__(self):
                self.total = 0

            def add(self, v):
                self.total += v
                if v > 1:
                    self.thisProxy[(self.thisIndex + 1) % 6].add(v - 1)

        outcomes = {}
        for layer in ("ugni", "mpi"):
            charm, conv, _ = charm_runtime(n_pes=6, cores_per_node=2,
                                           layer=layer)
            arr = charm.create_array(Accum, 6)
            charm.start(lambda pe: arr[0].add(12))
            end = charm.run(max_events=10**6)
            coll = charm.collections[arr.aid]
            total = sum(e.total for pe in range(6) for e in coll.local[pe].values())
            outcomes[layer] = (total, end)
        assert outcomes["ugni"][0] == outcomes["mpi"][0]  # same answer
        assert outcomes["ugni"][1] < outcomes["mpi"][1]  # uGNI faster
