"""The observability layer: metrics, causal tracing, flight recorder.

The contract under test (DESIGN.md §12):

* **observer-only** — simulated results are bit-identical with
  observability on or off, at any ``--jobs`` count, sequential or
  sharded, sanitizer on or off;
* **causal tracing** — every delivered message owns a complete span
  (``send`` → ``deliver`` → ``exec``) with monotone non-decreasing
  engine-clock stage times, on all three machine layers, including under
  injected faults;
* **deterministic metrics** — the sha256 digest of the merged snapshot
  is a pure function of the simulated event order;
* **flight recorder** — reliability give-ups, sanitizer violations, and
  engine stalls each leave a postmortem dump behind.
"""

import json

import pytest

from repro import observe
from repro.apps.kneighbor import kneighbor
from repro.converse.scheduler import Message
from repro.faults import FaultConfig
from repro.faults.report import fault_report
from repro.hardware import Machine
from repro.hardware.config import MachineConfig, tiny as tiny_config
from repro.lrts.factory import make_runtime
from repro.lrts.ugni_layer import UgniLayerConfig
from repro.observe import (
    MessageTracer,
    MetricsRegistry,
    chrome_trace,
    format_timeline,
    pe_utilization,
)
from repro.parallel import ShardedEngine
from repro.sim.trace import TraceLog
from repro.units import KB

#: small retry budget + fast backoff so give-up happens quickly
FAST = dict(reliability=True, max_retries=3,
            retry_backoff_base=2e-6, retry_backoff_max=8e-6)

LAYERS = ("ugni", "mpi", "rdma")


def observed_kneighbor(layer="ugni", size=4 * KB, iters=5, engine=None,
                       **cfg_kw):
    """Run one observed kNeighbor and return (result, observer)."""
    observe.clear_registry()
    cfg = MachineConfig(observe=True, **cfg_kw)
    result = kneighbor(size, layer=layer, iters=iters, config=cfg,
                       engine=engine)
    return result, observe.active_observers()[0]


# --------------------------------------------------------------------- #
# installation (mirrors the sanitizer's opt-in matrix)
# --------------------------------------------------------------------- #
class TestInstallation:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBSERVE", raising=False)
        m = Machine(n_nodes=2, config=tiny_config())
        assert m.observer is None
        assert m.engine.observer is None
        assert m.network.observer is None

    def test_config_flag_enables(self):
        m = Machine(n_nodes=2, config=tiny_config().replace(observe=True))
        assert m.observer is not None
        assert m.engine.observer is m.observer
        assert m.network.observer is m.observer

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBSERVE", "1")
        m = Machine(n_nodes=2, config=tiny_config())
        assert m.observer is not None

    def test_env_var_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBSERVE", "0")
        m = Machine(n_nodes=2, config=tiny_config())
        assert m.observer is None

    def test_registry_tracks_and_clears(self):
        observe.clear_registry()
        Machine(n_nodes=2, config=tiny_config().replace(observe=True))
        Machine(n_nodes=2, config=tiny_config().replace(observe=True))
        assert len(observe.active_observers()) == 2
        observe.clear_registry()
        assert observe.active_observers() == []


# --------------------------------------------------------------------- #
# TraceLog ring buffer (satellite: bounded memory for long campaigns)
# --------------------------------------------------------------------- #
class TestTraceLogRing:
    def test_unbounded_by_default(self):
        log = TraceLog()
        for i in range(10):
            log.emit(i * 1e-6, "cat", "ev")
        assert len(log.records) == 10
        assert log.dropped == 0

    def test_capacity_bounds_and_counts_drops(self):
        log = TraceLog(capacity=4)
        for i in range(10):
            log.emit(i * 1e-6, "cat", "ev", seq=i)
        assert len(log.records) == 4
        assert log.dropped == 6
        # the survivors are the newest four, oldest first
        assert [r.detail["seq"] for r in log.records] == [6, 7, 8, 9]

    def test_clear_resets_dropped(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.emit(0.0, "cat", "ev")
        log.clear()
        assert log.records == [] and log.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(Exception):
            TraceLog(capacity=0)


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counters_gauges_hists(self):
        reg = MetricsRegistry()
        reg.inc("msgs")
        reg.inc("msgs", 2)
        reg.gauge("depth", 7)
        reg.observe("lat", 1.5e-5, 3.0)  # bin 1 at default 1e-5 width
        reg.observe("lat", 1.9e-5, 5.0)  # same bin
        snap = reg.snapshot()
        assert snap["counter/msgs"] == 3
        assert snap["gauge/depth"] == 7
        assert snap["hist/lat/1"] == [2, 8.0]

    def test_sources_fold_nested_dicts(self):
        reg = MetricsRegistry()
        reg.register_source("pool", lambda: {"live": 2, "by_size": {64: 1}})
        snap = reg.snapshot()
        assert snap["gauge/pool/live"] == 2
        assert snap["gauge/pool/by_size/64"] == 1

    def test_source_name_collision_gets_suffix(self):
        reg = MetricsRegistry()
        reg.register_source("pool", lambda: 1)
        reg.register_source("pool", lambda: 2)
        snap = reg.snapshot()
        assert snap["gauge/pool"] == 1
        assert snap["gauge/pool#2"] == 2

    def test_digest_stable_and_excludes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.inc("x", 5)
            reg.gauge("engine/now", 1.0)
        assert a.digest() == b.digest()
        b.gauge("engine/now", 2.0)
        assert a.digest() != b.digest()
        assert a.digest(exclude=("engine",)) == b.digest(exclude=("engine",))


# --------------------------------------------------------------------- #
# causal tracing across all three machine layers
# --------------------------------------------------------------------- #
class TestCausalTracing:
    @pytest.mark.parametrize("layer", LAYERS)
    def test_spans_complete_and_monotone(self, layer):
        _, obs = observed_kneighbor(layer=layer)
        spans = obs.tracer.delivered_spans()
        assert spans, "no delivered spans traced"
        for span in spans:
            assert span.has("send") and span.has("deliver") and span.has("exec")
            assert span.monotone, (
                f"non-monotone stage times on {layer}: {span.stages}")

    @pytest.mark.parametrize("layer", LAYERS)
    def test_trace_ids_monotone_in_send_order(self, layer):
        _, obs = observed_kneighbor(layer=layer)
        send_times = [(min(s.times("send")), s.trace_id)
                      for s in obs.tracer.spans.values() if s.has("send")]
        ordered = sorted(send_times)
        assert [tid for _, tid in ordered] == sorted(
            tid for _, tid in send_times)

    def test_internode_spans_cross_the_lrts_layer(self):
        _, obs = observed_kneighbor(layer="ugni")
        internode = [s for s in obs.tracer.delivered_spans()
                     if s.has("lrts")]
        assert internode, "expected internode messages through the layer"
        # ugni's rendezvous round-trips were derived from the lrts stage
        assert obs.metrics.snapshot().get("counter/rndv/roundtrips", 0) > 0

    def test_tracing_survives_chaos(self):
        """Lossy fabric + software reliability: retransmissions repeat
        ``tx`` but every *delivered* span stays complete and monotone."""
        observe.clear_registry()
        cfg = tiny_config(cores_per_node=2)
        cfg = cfg.replace(observe=True)
        m = Machine(n_nodes=4, config=cfg, seed=3, trace=TraceLog())
        conv, layer = make_runtime(
            machine=m, n_pes=m.n_pes, layer="ugni",
            layer_config=UgniLayerConfig(**FAST),
            faults=FaultConfig(smsg_drop_rate=0.3))
        got = []
        h = conv.register_handler(lambda pe, msg: got.append(msg))
        sender = conv.register_handler(
            lambda pe, msg: conv.send(pe, 2, Message(h, pe.rank, 2, 64)))
        for _ in range(20):
            conv.send_from_outside(0, Message(sender, 0, 0, 0))
        m.engine.run(max_events=1_000_000)
        obs = m.observer
        assert got, "reliability should deliver most messages"
        delivered = obs.tracer.delivered_spans()
        assert len(delivered) >= len(got)
        for span in delivered:
            assert span.monotone
            assert span.has("send") and span.has("exec")
        # injected drops were observed as retransmissions
        snap = obs.metrics.snapshot()
        assert snap.get("counter/fault/smsg_drop", 0) > 0
        assert snap.get("counter/recovery/retransmit", 0) > 0

    def test_tracer_capacity_evicts_oldest(self):
        tracer = MessageTracer(capacity=3)
        for i in range(5):
            tracer.mint(0, 1, 64)
        assert len(tracer.spans) == 3
        assert tracer.evicted == 2
        assert tracer.minted() == 5
        tracer.stage(1, "send", 0.0)  # evicted: silently ignored
        assert tracer.span(1) is None


# --------------------------------------------------------------------- #
# metrics determinism (the digest contract)
# --------------------------------------------------------------------- #
class TestMetricsDeterminism:
    @pytest.mark.parametrize("layer", LAYERS)
    def test_digest_reproducible(self, layer):
        observed_kneighbor(layer=layer)
        d1 = observe.metrics_digest()
        observed_kneighbor(layer=layer)
        d2 = observe.metrics_digest()
        assert d1 == d2

    def test_digest_unchanged_by_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        observed_kneighbor()
        plain = observe.metrics_digest()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        observed_kneighbor()
        assert observe.metrics_digest() == plain

    def test_results_identical_observe_on_or_off(self):
        on, _ = observed_kneighbor()
        off = kneighbor(4 * KB, layer="ugni", iters=5,
                        config=MachineConfig())
        assert repr(on.iteration_time) == repr(off.iteration_time)

    def test_sequential_vs_sharded_digest_parity(self):
        """Same run on the sharded engine: identical metrics except the
        engine's own window/barrier counters (masked by ``exclude``)."""
        _, seq_obs = observed_kneighbor(size=2 * KB, iters=10)
        seq_snap = observe.collect_snapshot()
        seq_digest = observe.metrics_digest(exclude=("engine",),
                                            snapshot=seq_snap)
        eng = ShardedEngine(n_shards=3)
        observed_kneighbor(size=2 * KB, iters=10, engine=eng)
        shd_snap = observe.collect_snapshot()
        shd_digest = observe.metrics_digest(exclude=("engine",),
                                            snapshot=shd_snap)
        assert not eng.shard_stats()["sequential"]
        assert seq_digest == shd_digest
        # the masked keys really did differ (the test has teeth): the
        # sequential engine exports events/now, the sharded one its
        # window counters — unmasked digests cannot match
        assert "gauge/engine/windows" in shd_snap
        assert "gauge/engine/windows" not in seq_snap
        assert observe.metrics_digest(snapshot=seq_snap) != \
            observe.metrics_digest(snapshot=shd_snap)

    def test_shard_and_pool_stats_exported(self):
        eng = ShardedEngine(n_shards=3)
        observed_kneighbor(size=2 * KB, iters=10, engine=eng)
        snap = observe.collect_snapshot()
        assert snap["gauge/engine/n_shards"] == 3
        assert snap["gauge/engine/windows"] > 0
        pool_keys = [k for k in snap if k.startswith("gauge/pool/")]
        assert pool_keys, "mempool occupancy missing from the snapshot"

    def test_crosslayer_observers_merge_deterministically(self):
        observe.clear_registry()
        for layer in LAYERS:
            kneighbor(2 * KB, layer=layer, iters=3,
                      config=MachineConfig(observe=True))
        assert len(observe.active_observers()) == 3
        merged = observe.collect_snapshot()
        # counters add across observers: 3 runs' messages, not 1
        one = observe.active_observers()[0].snapshot()
        assert merged["counter/msg/sent"] > one["counter/msg/sent"]
        d1 = observe.metrics_digest(snapshot=merged)
        observe.clear_registry()
        for layer in LAYERS:
            kneighbor(2 * KB, layer=layer, iters=3,
                      config=MachineConfig(observe=True))
        assert observe.metrics_digest() == d1


# --------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_dump_on_reliability_giveup(self):
        """100% drop + tiny retry budget: every give-up leaves a dump
        whose ring holds the retransmissions that led up to it."""
        observe.clear_registry()
        m = Machine(n_nodes=4, config=tiny_config(cores_per_node=2).replace(observe=True),
                    seed=0, trace=TraceLog())
        conv, layer = make_runtime(
            machine=m, n_pes=m.n_pes, layer="ugni",
            layer_config=UgniLayerConfig(**FAST),
            faults=FaultConfig(smsg_drop_rate=1.0))
        h = conv.register_handler(lambda pe, msg: None)
        sender = conv.register_handler(
            lambda pe, msg: conv.send(pe, 2, Message(h, pe.rank, 2, 64)))
        for _ in range(3):
            conv.send_from_outside(0, Message(sender, 0, 0, 0))
        m.engine.run(max_events=1_000_000)
        obs = m.observer
        assert layer.stats()["rel_failed"] == 3
        giveups = [d for d in obs.flight.dumps
                   if d.reason == "recovery:give_up"]
        assert len(giveups) == 3
        dump = giveups[-1]
        assert any(r.event == "retransmit" for r in dump.records)
        assert "give_up" in dump.render() or "retransmit" in dump.render()
        snap = obs.metrics.snapshot()
        assert snap["counter/recovery/give_up"] == 3

    def test_dump_on_engine_stall(self):
        observe.clear_registry()
        m = Machine(n_nodes=2, config=tiny_config().replace(observe=True))

        def tick():
            m.engine.call_after(1e-9, tick)

        m.engine.call_after(1e-9, tick)
        with pytest.raises(Exception, match="max_events"):
            m.engine.run(max_events=50)
        assert any(d.reason == "engine-stall" for d in m.observer.flight.dumps)

    def test_ring_is_bounded(self):
        observe.clear_registry()
        m = Machine(n_nodes=2, config=tiny_config().replace(observe=True))
        obs = m.observer
        for i in range(1000):
            obs.flight.note(i * 1e-6, "fault", "synthetic")
        assert len(obs.flight.log.records) == 256
        assert obs.flight.log.dropped == 744
        dump = obs.flight.dump("test", 1.0)
        assert len(dump.records) == 256 and dump.dropped == 744


# --------------------------------------------------------------------- #
# fault report folding (satellite: one summary for trace and registry)
# --------------------------------------------------------------------- #
class TestFaultReportFolding:
    def test_observer_counts_match_trace_counts(self):
        observe.clear_registry()
        m = Machine(n_nodes=4, config=tiny_config(cores_per_node=2).replace(observe=True),
                    seed=1, trace=TraceLog())
        conv, layer = make_runtime(
            machine=m, n_pes=m.n_pes, layer="ugni",
            layer_config=UgniLayerConfig(**FAST),
            faults=FaultConfig(smsg_drop_rate=0.4))
        h = conv.register_handler(lambda pe, msg: None)
        sender = conv.register_handler(
            lambda pe, msg: conv.send(pe, 2, Message(h, pe.rank, 2, 64)))
        for _ in range(10):
            conv.send_from_outside(0, Message(sender, 0, 0, 0))
        m.engine.run(max_events=1_000_000)
        from_trace = fault_report(m.trace)
        from_observer = fault_report(observer=m.observer)
        assert from_trace == from_observer
        assert from_trace["fault"].get("smsg_drop", 0) > 0
        # both sources at once merges rather than double-counts
        assert fault_report(m.trace, observer=m.observer) == from_trace


# --------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------- #
class TestExport:
    def test_chrome_trace_structure(self, tmp_path):
        _, obs = observed_kneighbor()
        doc = chrome_trace(obs)
        json.dumps(doc)  # serializable
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "b", "e"} <= phases
        begins = sum(1 for e in events if e["ph"] == "b")
        ends = sum(1 for e in events if e["ph"] == "e")
        assert begins == ends == len(
            [s for s in obs.tracer.spans.values() if s.stages])
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0.0

    def test_timeline_and_utilization(self):
        _, obs = observed_kneighbor()
        util = pe_utilization(obs)
        assert util, "observer should double as the per-PE tracer"
        assert any("useful" in kinds or "overhead" in kinds
                   for kinds in util.values())
        text = format_timeline(obs)
        assert "pe0" in text and "busy" in text

    def test_cli_writes_artifacts(self, tmp_path, capsys):
        from repro.observe.__main__ import main
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        rc = main(["kneighbor", "--size", "2048", "--iters", "3",
                   "--trace", str(trace), "--metrics", str(metrics)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        rows = [json.loads(line)
                for line in metrics.read_text().splitlines()]
        assert rows[0]["app"] == "kneighbor"
        assert rows[0]["metrics_digest"]
        assert rows[0]["metrics"]["counter/msg/sent"] > 0
