"""Physics tests for the real (numpy) MD reference implementation."""

import numpy as np
import pytest

from repro.apps.minimd.reference import (
    LJSystem,
    kinetic_energy,
    lj_forces,
    total_momentum,
    velocity_verlet,
)


@pytest.fixture(scope="module")
def small_system():
    return LJSystem.lattice(4, density=0.8, temperature=1.0, seed=1)


class TestSetup:
    def test_lattice_counts(self, small_system):
        assert small_system.n == 64
        assert small_system.positions.shape == (64, 3)

    def test_initial_momentum_zero(self, small_system):
        assert np.abs(total_momentum(small_system)).max() < 1e-12

    def test_positions_inside_box(self, small_system):
        assert (small_system.positions >= 0).all()
        assert (small_system.positions <= small_system.box).all()


class TestForces:
    def test_forces_sum_to_zero(self, small_system):
        forces, _ = lj_forces(small_system)
        assert np.abs(forces.sum(axis=0)).max() < 1e-9

    def test_two_particle_force_matches_analytic(self):
        r = 1.2
        sys2 = LJSystem(
            positions=np.array([[1.0, 1.0, 1.0], [1.0 + r, 1.0, 1.0]]),
            velocities=np.zeros((2, 3)),
            box=20.0,
        )
        forces, _ = lj_forces(sys2)
        # analytic LJ force magnitude along x
        f_analytic = 24 * (2 * r ** -13 - r ** -7)
        assert forces[0, 0] == pytest.approx(-f_analytic, rel=1e-10)
        assert forces[1, 0] == pytest.approx(f_analytic, rel=1e-10)
        assert np.abs(forces[:, 1:]).max() < 1e-12

    def test_beyond_cutoff_no_force(self):
        sys2 = LJSystem(
            positions=np.array([[1.0, 1.0, 1.0], [5.0, 1.0, 1.0]]),
            velocities=np.zeros((2, 3)),
            box=20.0,
            cutoff=2.5,
        )
        forces, pot = lj_forces(sys2)
        assert np.abs(forces).max() == 0.0
        assert pot == 0.0

    def test_minimum_image_convention(self):
        """Particles near opposite faces interact through the boundary."""
        box = 10.0
        sys2 = LJSystem(
            positions=np.array([[0.3, 5.0, 5.0], [box - 0.3, 5.0, 5.0]]),
            velocities=np.zeros((2, 3)),
            box=box,
        )
        forces, _ = lj_forces(sys2)
        assert np.abs(forces[0, 0]) > 1.0  # separation 0.6 through the wall

    def test_cell_list_matches_bruteforce(self):
        """Cell-list forces must equal the O(n^2) reference.

        Uses a 5^3 lattice so the box holds 2 cells per dimension — the
        wrap-around regime where a naive neighbor-offset dedup double
        counts pairs (a real bug this test caught).
        """
        sys_a = LJSystem.lattice(5, density=0.8, seed=3)
        rng = np.random.default_rng(4)
        sys_a.positions += rng.normal(0, 0.05, sys_a.positions.shape)
        sys_a.positions %= sys_a.box
        forces_cell, pot_cell = lj_forces(sys_a)

        # brute force
        pos, box, rc = sys_a.positions, sys_a.box, sys_a.cutoff
        n = sys_a.n
        forces_bf = np.zeros_like(pos)
        pot_bf = 0.0
        inv_rc6 = rc ** -6
        shift = 4 * (inv_rc6 ** 2 - inv_rc6)
        for i in range(n):
            for j in range(i + 1, n):
                d = pos[i] - pos[j]
                d -= box * np.round(d / box)
                r2 = float(d @ d)
                if r2 >= rc * rc:
                    continue
                inv_r2 = 1.0 / r2
                inv_r6 = inv_r2 ** 3
                fmag = 24 * (2 * inv_r6 ** 2 - inv_r6) * inv_r2
                forces_bf[i] += d * fmag
                forces_bf[j] -= d * fmag
                pot_bf += 4 * (inv_r6 ** 2 - inv_r6) - shift
        assert np.allclose(forces_cell, forces_bf, atol=1e-9)
        assert pot_cell == pytest.approx(pot_bf, rel=1e-9)


class TestIntegration:
    def test_energy_conservation(self):
        system = LJSystem.lattice(4, density=0.8, temperature=0.8, seed=7)
        trace = velocity_verlet(system, steps=100, dt=0.002)
        total = trace.total
        drift = abs(total[-1] - total[0]) / abs(total[0])
        assert drift < 5e-3

    def test_momentum_conservation(self):
        system = LJSystem.lattice(4, density=0.8, temperature=1.0, seed=8)
        velocity_verlet(system, steps=50, dt=0.002)
        assert np.abs(total_momentum(system)).max() < 1e-9

    def test_positions_stay_in_box(self):
        system = LJSystem.lattice(3, density=0.6, temperature=1.5, seed=9)
        velocity_verlet(system, steps=50, dt=0.002)
        assert (system.positions >= 0).all()
        assert (system.positions <= system.box).all()

    def test_deterministic(self):
        a = LJSystem.lattice(3, seed=5)
        b = LJSystem.lattice(3, seed=5)
        velocity_verlet(a, steps=20)
        velocity_verlet(b, steps=20)
        assert np.array_equal(a.positions, b.positions)
