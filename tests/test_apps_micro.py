"""Tests for the microbenchmark applications (the Fig. 1-10 machinery)."""

import pytest

from repro.apps.kneighbor import kneighbor
from repro.apps.onetoall import one_to_all
from repro.apps.pingpong import charm_pingpong
from repro.apps.raw import fma_bte_latency, mpi_pingpong, ugni_pingpong
from repro.hardware.config import tiny as tiny_config
from repro.units import KB, MB, us


class TestRawPingpong:
    def test_ugni_small_matches_calibration(self):
        lat = ugni_pingpong(8)
        assert 0.9 * us < lat < 1.5 * us

    def test_ugni_latency_monotone(self):
        lats = [ugni_pingpong(s) for s in (8, 1 * KB, 64 * KB, 1 * MB)]
        assert all(b > a for a, b in zip(lats, lats[1:]))

    def test_mpi_above_ugni(self):
        for size in (8, 512, 64 * KB):
            assert mpi_pingpong(size) > ugni_pingpong(size)

    def test_mpi_same_vs_diff_buffer_only_matters_beyond_eager(self):
        # inside eager: identical
        assert mpi_pingpong(4 * KB, same_buffer=True) == pytest.approx(
            mpi_pingpong(4 * KB, same_buffer=False))
        # rendezvous: different
        assert (mpi_pingpong(64 * KB, same_buffer=False)
                > mpi_pingpong(64 * KB, same_buffer=True))


class TestFmaBteSweep:
    def test_all_kinds_positive_and_ordered(self):
        for kind in ("fma_put", "fma_get", "bte_put", "bte_get"):
            small = fma_bte_latency(kind, 8)
            large = fma_bte_latency(kind, 1 * MB)
            assert 0 < small < large

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fma_bte_latency("dma_put", 8)

    def test_put_get_asymmetry(self):
        assert fma_bte_latency("fma_get", 8) > fma_bte_latency("fma_put", 8)


class TestCharmPingpong:
    def test_result_fields(self):
        r = charm_pingpong(88, layer="ugni", iters=5, warmup=2)
        assert r.size == 88 and r.layer == "ugni"
        assert r.one_way_latency > 0
        assert r.bandwidth == pytest.approx(88 / r.one_way_latency)

    def test_intranode_mode(self):
        inter = charm_pingpong(4 * KB, layer="ugni", iters=5, warmup=2)
        intra = charm_pingpong(4 * KB, layer="ugni", intranode=True,
                               iters=5, warmup=2)
        assert intra.one_way_latency != inter.one_way_latency

    def test_persistent_requires_ugni_layer(self):
        from repro.errors import LrtsError

        with pytest.raises(LrtsError):
            charm_pingpong(64 * KB, layer="mpi", persistent=True,
                           iters=2, warmup=1)

    def test_deterministic(self):
        a = charm_pingpong(1 * KB, iters=5, warmup=2, seed=1)
        b = charm_pingpong(1 * KB, iters=5, warmup=2, seed=1)
        assert a.one_way_latency == b.one_way_latency


class TestOneToAll:
    def test_runs_and_orders(self):
        small = one_to_all(88, layer="ugni", n_nodes=4, iters=4, warmup=1)
        big = one_to_all(64 * KB, layer="ugni", n_nodes=4, iters=4, warmup=1)
        assert 0 < small.latency < big.latency

    def test_mpi_layer_slower_small(self):
        u = one_to_all(88, layer="ugni", n_nodes=4, iters=4, warmup=1)
        m = one_to_all(88, layer="mpi", n_nodes=4, iters=4, warmup=1)
        assert m.latency > u.latency


class TestKNeighbor:
    def test_completes_with_various_k(self):
        for k, n in ((1, 3), (2, 5)):
            r = kneighbor(1 * KB, k=k, n_cores=n, iters=4, warmup=1)
            assert r.iteration_time > 0

    def test_iteration_time_grows_with_size(self):
        a = kneighbor(1 * KB, iters=4, warmup=1).iteration_time
        b = kneighbor(256 * KB, iters=4, warmup=1).iteration_time
        assert b > a

    def test_blocking_effect_on_mpi(self):
        """The Fig. 10 mechanism at 256KB: MPI >= 1.5x."""
        u = kneighbor(256 * KB, layer="ugni", iters=4, warmup=1)
        m = kneighbor(256 * KB, layer="mpi", iters=4, warmup=1)
        assert m.iteration_time > 1.5 * u.iteration_time
