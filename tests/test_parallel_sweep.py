"""The deterministic process-pool sweep runner and spawn-key seeding.

The contract under test: ``run_sweep`` at any job count returns exactly
what sequential execution returns — same values, same order, same
derived seeds — and ``spawn_seed`` is a pure function of (root seed,
spawn key) with no dependence on scheduling.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

from repro.parallel import (
    JOBS_ENV,
    SweepPoint,
    resolve_jobs,
    run_sweep,
    spawn_seed,
    sweep_map,
)
from repro.sim.rng import RngRegistry

_RUN_ALL = (pathlib.Path(__file__).parent.parent / "benchmarks"
            / "run_all.py")


def _load_run_all():
    spec = importlib.util.spec_from_file_location("run_all", _RUN_ALL)
    mod = importlib.util.module_from_spec(spec)
    # registered so the pool can pickle run_all functions by reference
    sys.modules["run_all"] = mod
    spec.loader.exec_module(mod)
    return mod


# module-level point functions: picklable for the worker processes
def _square(x: int) -> int:
    return x * x


def _tag(x: int, seed: int = -1) -> tuple[int, int]:
    return (x, seed)


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


# --------------------------------------------------------------------- #
# spawn-key seeding
# --------------------------------------------------------------------- #
class TestSpawnSeed:
    def test_pure_function_of_root_and_key(self):
        assert spawn_seed(0, "a") == spawn_seed(0, "a")
        assert spawn_seed(0, "a") != spawn_seed(1, "a")
        assert spawn_seed(0, "a") != spawn_seed(0, "b")
        assert spawn_seed(0, 1, "a") != spawn_seed(0, "a", 1)

    def test_range_fits_a_signed_64bit_seed(self):
        for key in range(200):
            s = spawn_seed(42, key)
            assert 0 <= s < 2 ** 63

    def test_key_parts_are_separated(self):
        # ("ab", "c") and ("a", "bc") must not collide via concatenation
        assert spawn_seed(0, "ab", "c") != spawn_seed(0, "a", "bc")

    def test_registry_spawn_derives_independent_registry(self):
        reg = RngRegistry(7)
        child_a = reg.spawn("worker", 0)
        child_b = reg.spawn("worker", 1)
        assert child_a.root_seed == spawn_seed(7, "worker", 0)
        assert child_b.root_seed != child_a.root_seed
        # spawning must not perturb the parent
        assert reg.root_seed == 7


# --------------------------------------------------------------------- #
# job-count resolution
# --------------------------------------------------------------------- #
class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs() == 5
        monkeypatch.delenv(JOBS_ENV)
        assert resolve_jobs() == 1

    def test_nonpositive_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError, match=JOBS_ENV):
            resolve_jobs()


# --------------------------------------------------------------------- #
# the sweep runner
# --------------------------------------------------------------------- #
class TestRunSweep:
    def test_submission_order_preserved(self):
        xs = list(range(20))
        points = [SweepPoint(_square, (x,)) for x in xs]
        assert run_sweep(points, jobs=1) == [x * x for x in xs]

    def test_parallel_matches_sequential(self):
        xs = list(range(12))
        seq = run_sweep([SweepPoint(_square, (x,)) for x in xs], jobs=1)
        par = run_sweep([SweepPoint(_square, (x,)) for x in xs], jobs=3)
        assert par == seq

    def test_sweep_map_equivalence(self):
        xs = [3, 1, 4, 1, 5]
        assert sweep_map(_square, [(x,) for x in xs]) == [x * x for x in xs]

    def test_root_seed_injection_is_deterministic(self):
        def mk():
            return [SweepPoint(_tag, (i,), label=f"p{i}") for i in range(6)]

        a = run_sweep(mk(), jobs=1, root_seed=123)
        b = run_sweep(mk(), jobs=2, root_seed=123)
        assert a == b
        # derived seeds are the documented pure function of (root, index, label)
        assert a[0] == (0, spawn_seed(123, 0, "p0"))
        assert a[5] == (5, spawn_seed(123, 5, "p5"))
        # different root seed -> different derived seeds, same values
        c = run_sweep(mk(), jobs=1, root_seed=124)
        assert [x for x, _ in c] == [x for x, _ in a]
        assert [s for _, s in c] != [s for _, s in a]

    def test_explicit_seed_kwarg_is_kept(self):
        pts = [SweepPoint(_tag, (0,), kwargs={"seed": 99})]
        assert run_sweep(pts, jobs=1, root_seed=5) == [(0, 99)]

    def test_lambda_rejected_in_parallel_mode(self):
        pts = [SweepPoint(lambda: 1), SweepPoint(lambda: 2)]
        with pytest.raises(ValueError, match="lambda"):
            run_sweep(pts, jobs=2)
        # sequential mode runs them fine (no pickling involved)
        assert run_sweep(pts, jobs=1) == [1, 2]

    def test_worker_exception_propagates(self):
        pts = [SweepPoint(_boom, (1,)), SweepPoint(_boom, (2,))]
        with pytest.raises(ValueError, match="boom"):
            run_sweep(pts, jobs=2)

    def test_single_point_skips_the_pool(self):
        assert run_sweep([SweepPoint(_square, (9,))], jobs=4) == [81]


# --------------------------------------------------------------------- #
# run_all.py integration: --jobs and the baseline comparison
# --------------------------------------------------------------------- #
class TestRunAllJobs:
    def test_parallel_rounds_match_sequential(self, monkeypatch):
        ra = _load_run_all()
        monkeypatch.setitem(ra.BENCHMARKS, "toy", _toy_bench)
        seq = ra.run_benchmark("toy", rounds=3)
        points = [ra.SweepPoint(ra._measure_round, ("toy",))
                  for _ in range(3)]
        par = ra._aggregate("toy", ra.run_sweep(points, jobs=2))
        assert par["checksum"] == seq["checksum"]
        assert par["sim"] == seq["sim"]

    def test_report_records_jobs(self, monkeypatch):
        ra = _load_run_all()
        monkeypatch.setattr(ra, "BENCHMARKS", {"toy": _toy_bench})
        report = ra.run_all(rounds=2, label="t", jobs=1)
        assert report["jobs"] == 1
        assert set(report["benchmarks"]) == {"toy"}

    def test_compare_flags_benchmark_missing_from_baseline(self):
        ra = _load_run_all()
        base = {"schema": ra.SCHEMA, "benchmarks": {
            "old": {"normalized": 1.0, "checksum": "sha256:aaa"}}}
        cur = {"schema": ra.SCHEMA, "benchmarks": {
            "old": {"normalized": 1.0, "checksum": "sha256:aaa"},
            "new": {"normalized": 1.0, "checksum": "sha256:bbb"}}}
        fails = ra.compare(cur, base, tolerance=0.2)
        assert len(fails) == 1
        assert "new" in fails[0]
        assert "--rebase" in fails[0]

    def test_compare_survives_malformed_baseline_entry(self):
        ra = _load_run_all()
        base = {"schema": ra.SCHEMA, "benchmarks": {
            "b": {"checksum": "sha256:aaa"}}}  # no "normalized"
        cur = {"schema": ra.SCHEMA, "benchmarks": {
            "b": {"normalized": 1.0, "checksum": "sha256:aaa"}}}
        fails = ra.compare(cur, base, tolerance=0.2)
        assert fails and "--rebase" in fails[0]

    def test_committed_baseline_covers_every_benchmark(self):
        import json
        ra = _load_run_all()
        base = json.loads(
            (_RUN_ALL.parent / "BENCH_baseline.json").read_text())
        assert set(base["benchmarks"]) == set(ra.BENCHMARKS)


def _toy_bench() -> dict[str, float]:
    return {"m": 1.25, "n": 2.5}
