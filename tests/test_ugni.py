"""Tests for the simulated uGNI layer: CQs, registration, SMSG, MSGQ, RDMA."""

import pytest

from repro.errors import UgniInvalidParam, UgniNoSpace, UgniNotRegistered
from repro.hardware import Machine
from repro.hardware.config import tiny as tiny_config
from repro.ugni import (
    CqEventKind,
    PostDescriptor,
    PostType,
)
from repro.ugni.api import GniJob
from repro.ugni.cq import CompletionQueue, CqEntry
from repro.units import KB, MB, us


def make_job(n_nodes=4, cores_per_node=2, seed=0):
    m = Machine(n_nodes=n_nodes, config=tiny_config(cores_per_node=cores_per_node), seed=seed)
    return m, GniJob(m)


class TestCompletionQueue:
    def test_fifo_order(self):
        m, job = make_job()
        cq = job.CqCreate()
        for i in range(3):
            cq.push(CqEntry(CqEventKind.POST_DONE, float(i), tag=i))
        assert [job.CqGetEvent(cq).tag for _ in range(3)] == [0, 1, 2]

    def test_empty_returns_none(self):
        m, job = make_job()
        cq = job.CqCreate()
        assert job.CqGetEvent(cq) is None

    def test_overrun_counted_not_dropped(self):
        m, job = make_job()
        cq = job.CqCreate(capacity=2)
        for i in range(3):
            cq.push(CqEntry(CqEventKind.POST_DONE, 0.0, tag=i))
        assert cq.overruns == 1
        # the data event is kept AND an explicit ERROR marker is queued
        assert len(cq) == 4
        kinds = [cq.get_event().kind for _ in range(4)]
        assert kinds.count(CqEventKind.ERROR) == 1

    def test_on_event_hook_fires(self):
        m, job = make_job()
        cq = job.CqCreate()
        fired = []
        cq.on_event = fired.append
        cq.push(CqEntry(CqEventKind.POST_DONE, 0.0))
        assert fired == [cq]

    def test_invalid_capacity(self):
        m, job = make_job()
        with pytest.raises(UgniInvalidParam):
            job.CqCreate(capacity=0)


class TestMemRegistration:
    def test_register_returns_cost_scaling_with_pages(self):
        m, job = make_job()
        node = m.nodes[0]
        small = node.memory.malloc(4 * KB)
        big = node.memory.malloc(1 * MB)
        _, cost_small = job.MemRegister(small)
        _, cost_big = job.MemRegister(big)
        assert cost_big > cost_small > 0

    @pytest.mark.sanitize_violations
    def test_deregister_invalidates(self):
        m, job = make_job()
        blk = m.nodes[0].memory.malloc(4 * KB)
        h, _ = job.MemRegister(blk)
        job.MemDeregister(h)
        assert not h.valid
        with pytest.raises(UgniInvalidParam):
            job.MemDeregister(h)

    def test_register_freed_block_rejected(self):
        m, job = make_job()
        blk = m.nodes[0].memory.malloc(64)
        m.nodes[0].memory.free(blk)
        with pytest.raises(UgniInvalidParam):
            job.MemRegister(blk)

    def test_registered_bytes_accounting(self):
        m, job = make_job()
        table = job.registrations[0]
        blk = m.nodes[0].memory.malloc(8 * KB)
        h, _ = job.MemRegister(blk)
        assert table.registered_bytes == h.length
        job.MemDeregister(h)
        assert table.registered_bytes == 0

    def test_malloc_registered_roundtrip(self):
        m, job = make_job()
        blk, h, cost = job.malloc_registered(1, 16 * KB)
        assert cost > m.config.t_register(16 * KB)  # includes malloc
        assert h.covers(blk.addr, 16 * KB)
        job.free_registered(blk, h)
        assert m.nodes[1].memory.used == 0


class TestSmsg:
    def test_delivery_and_payload(self):
        m, job = make_job()
        cpu = job.SmsgSendWTag(0, 2, tag=7, nbytes=88, payload={"hello": 1})
        assert cpu > 0
        m.engine.run()
        msg, rcpu = job.SmsgGetNextWTag(2)
        assert msg is not None
        assert msg.tag == 7 and msg.payload == {"hello": 1}
        assert msg.src_pe == 0
        assert rcpu > 0

    def test_small_message_latency_calibration(self):
        """8B SMSG inter-node ≈ 1.2us (paper's pure-uGNI number)."""
        m, job = make_job()
        job.SmsgSendWTag(0, 2, tag=0, nbytes=8)
        times = []
        job.smsg.rx_cq(2).on_event = lambda cq: times.append(m.engine.now)
        m.engine.run()
        assert len(times) == 1
        assert 0.8 * us < times[0] < 1.8 * us

    def test_oversize_rejected(self):
        m, job = make_job()
        with pytest.raises(UgniInvalidParam):
            job.SmsgSendWTag(0, 2, tag=0, nbytes=job.smsg.max_size + 1)

    def test_send_to_self_rejected(self):
        m, job = make_job()
        with pytest.raises(UgniInvalidParam):
            job.SmsgSendWTag(3, 3, tag=0, nbytes=8)

    def test_credit_exhaustion_and_release(self):
        m, job = make_job()
        size = job.smsg.max_size
        sent = 0
        with pytest.raises(UgniNoSpace):
            while True:
                job.SmsgSendWTag(0, 2, tag=0, nbytes=size)
                sent += 1
        assert sent > 0
        m.engine.run()
        # drain everything: credits release, sending works again
        for _ in range(sent):
            msg, _ = job.SmsgGetNextWTag(2)
            assert msg is not None
        job.SmsgSendWTag(0, 2, tag=0, nbytes=size)

    def test_mailbox_memory_grows_with_connections(self):
        m, job = make_job(n_nodes=4, cores_per_node=2)
        base = job.smsg.total_mailbox_memory
        job.SmsgSendWTag(0, 2, tag=0, nbytes=8)
        one = job.smsg.total_mailbox_memory
        job.SmsgSendWTag(0, 4, tag=0, nbytes=8)
        job.SmsgSendWTag(0, 6, tag=0, nbytes=8)
        three = job.smsg.total_mailbox_memory
        assert base == 0
        assert three == 3 * one

    def test_in_flight_accounting(self):
        m, job = make_job()
        for i in range(5):
            job.SmsgSendWTag(0, 2, tag=i, nbytes=32)
        assert job.smsg.in_flight() == 5
        m.engine.run()
        for _ in range(5):
            job.SmsgGetNextWTag(2)
        assert job.smsg.in_flight() == 0

    def test_intranode_uses_loopback(self):
        m, job = make_job(n_nodes=2, cores_per_node=4)
        job.SmsgSendWTag(0, 1, tag=0, nbytes=64)  # same node
        m.engine.run()
        msg, _ = job.SmsgGetNextWTag(1)
        assert msg is not None

    def test_fifo_per_connection(self):
        m, job = make_job()
        for i in range(10):
            job.SmsgSendWTag(0, 2, tag=i, nbytes=16)
        m.engine.run()
        tags = []
        while True:
            msg, _ = job.SmsgGetNextWTag(2)
            if msg is None:
                break
            tags.append(msg.tag)
        assert tags == list(range(10))


class TestMsgq:
    def test_delivery_via_node_queue(self):
        m, job = make_job(n_nodes=3, cores_per_node=2)
        job.msgq.send(0, 4, tag=3, nbytes=64, payload="x")
        m.engine.run()
        node_id = m.node_of_pe(4).node_id
        msg, cpu = job.msgq.get_next(node_id)
        assert msg is not None and msg.payload == "x" and msg.dst_pe == 4
        assert cpu > 0

    def test_msgq_slower_than_smsg(self):
        m, job = make_job()
        t_smsg = job.SmsgSendWTag(0, 2, tag=0, nbytes=64)
        t_msgq = job.msgq.send(0, 4, tag=0, nbytes=64)
        assert t_msgq > t_smsg

    def test_msgq_memory_scales_with_nodes_not_peers(self):
        m, job = make_job(n_nodes=4, cores_per_node=2)
        for dst in (2, 4, 6):
            job.msgq.send(0, dst, tag=0, nbytes=8)
        # three destination nodes touched -> 3 queue regions
        assert job.msgq.total_queue_memory == 3 * m.config.msgq_node_bytes

    def test_oversize_rejected(self):
        m, job = make_job()
        with pytest.raises(UgniInvalidParam):
            job.msgq.send(0, 2, tag=0, nbytes=job.msgq.max_size + 1)

    def test_queue_overflow(self):
        m, job = make_job()
        with pytest.raises(UgniNoSpace):
            for _ in range(100000):
                job.msgq.send(0, 2, tag=0, nbytes=job.msgq.max_size)


class TestRdma:
    def _registered_pair(self, job, m, size, src=0, dst=1, dst_cq=None):
        src_blk = m.nodes[src].memory.malloc(size)
        dst_blk = m.nodes[dst].memory.malloc(size)
        src_h, _ = job.MemRegister(src_blk)
        dst_h, _ = job.MemRegister(dst_blk, cq=dst_cq)
        return src_h, dst_h

    def test_put_generates_local_and_remote_events(self):
        m, job = make_job()
        src_cq, dst_cq = job.CqCreate(), job.CqCreate()
        lh, rh = self._registered_pair(job, m, 4 * KB, dst_cq=dst_cq)
        desc = PostDescriptor(PostType.PUT, local_mem=lh, remote_mem=rh,
                              length=4 * KB, src_cq=src_cq)
        cpu = job.PostFma(0, desc)
        assert cpu > 0
        m.engine.run()
        local = job.CqGetEvent(src_cq)
        remote = job.CqGetEvent(dst_cq)
        assert local.kind is CqEventKind.POST_DONE
        assert remote.kind is CqEventKind.REMOTE_DATA
        # data must land before/with the local completion
        assert remote.time <= local.time

    def test_get_generates_no_remote_event(self):
        """The uGNI property that forces the paper's ACK_TAG message."""
        m, job = make_job()
        src_cq, dst_cq = job.CqCreate(), job.CqCreate()
        lh, rh = self._registered_pair(job, m, 4 * KB, dst_cq=dst_cq)
        desc = PostDescriptor(PostType.GET, local_mem=lh, remote_mem=rh,
                              length=4 * KB, src_cq=src_cq)
        job.PostRdma(0, desc)
        m.engine.run()
        assert job.CqGetEvent(src_cq) is not None
        assert job.CqGetEvent(dst_cq) is None

    @pytest.mark.sanitize_violations
    def test_unregistered_memory_rejected(self):
        m, job = make_job()
        lh, rh = self._registered_pair(job, m, 4 * KB)
        job.MemDeregister(rh)
        desc = PostDescriptor(PostType.PUT, local_mem=lh, remote_mem=rh, length=4 * KB)
        with pytest.raises(UgniNotRegistered):
            job.PostFma(0, desc)

    def test_out_of_bounds_transaction_rejected(self):
        m, job = make_job()
        lh, rh = self._registered_pair(job, m, 4 * KB)
        desc = PostDescriptor(PostType.PUT, local_mem=lh, remote_mem=rh,
                              length=8 * KB)
        with pytest.raises(UgniNotRegistered):
            job.PostFma(0, desc)

    def test_post_from_wrong_node_rejected(self):
        m, job = make_job()
        lh, rh = self._registered_pair(job, m, 4 * KB)
        desc = PostDescriptor(PostType.PUT, local_mem=lh, remote_mem=rh, length=4 * KB)
        with pytest.raises(UgniInvalidParam):
            job.PostFma(2, desc)

    def test_zero_length_rejected(self):
        m, job = make_job()
        lh, rh = self._registered_pair(job, m, 4 * KB)
        with pytest.raises(UgniInvalidParam):
            PostDescriptor(PostType.PUT, local_mem=lh, remote_mem=rh, length=0)

    def test_bte_completes_after_fma_for_small(self):
        m, job = make_job()
        done = {}
        for name, fma in [("fma", True), ("bte", False)]:
            m2, job2 = make_job()
            cq = job2.CqCreate()
            lh, rh = self._registered_pair(job2, m2, 512)
            desc = PostDescriptor(PostType.PUT, local_mem=lh, remote_mem=rh,
                                  length=512, src_cq=cq)
            job2.rdma.post(0, desc, fma=fma)
            m2.engine.run()
            done[name] = job2.CqGetEvent(cq).time
        assert done["fma"] < done["bte"]

    def test_post_best_switches_at_crossover(self):
        m, job = make_job()
        cfg = m.config
        # below crossover: FMA (CPU cost grows with size)
        lh, rh = self._registered_pair(job, m, 64 * KB)
        small = PostDescriptor(PostType.GET, local_mem=lh, remote_mem=rh, length=1 * KB)
        big = PostDescriptor(PostType.GET, local_mem=lh, remote_mem=rh, length=64 * KB)
        cpu_small = job.PostBest(0, small)
        cpu_big = job.PostBest(0, big)
        # FMA for 1K: cpu includes per-byte; BTE for 64K: flat post cost
        assert cpu_small > cfg.fma_issue_cpu
        assert cpu_big == pytest.approx(cfg.bte_post_cpu)

    def test_amo_roundtrip(self):
        m, job = make_job()
        cq = job.CqCreate()
        lh, rh = self._registered_pair(job, m, 64)
        desc = PostDescriptor(PostType.AMO, local_mem=lh, remote_mem=rh,
                              length=8, src_cq=cq)
        job.PostFma(0, desc)
        m.engine.run()
        ev = job.CqGetEvent(cq)
        assert ev is not None and ev.kind is CqEventKind.POST_DONE

    def test_local_node_post_uses_loopback(self):
        m, job = make_job(n_nodes=2, cores_per_node=4)
        cq = job.CqCreate()
        src_blk = m.nodes[0].memory.malloc(4 * KB)
        dst_blk = m.nodes[0].memory.malloc(4 * KB)
        lh, _ = job.MemRegister(src_blk)
        rh, _ = job.MemRegister(dst_blk)
        desc = PostDescriptor(PostType.PUT, local_mem=lh, remote_mem=rh,
                              length=4 * KB, src_cq=cq)
        job.PostFma(0, desc)
        m.engine.run()
        assert job.CqGetEvent(cq) is not None
