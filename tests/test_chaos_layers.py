"""Chaos + sanitizer matrix over every machine layer.

One test per layer, selectable with ``pytest -k <layer>`` — the CI
chaos-and-sanitize job fans these out as a ``layer`` matrix.  Each case
runs kNeighbor under the hardest fault mix that layer is specified to
survive (ugni needs its reliability protocol armed for drops; mpi's
simulated transport only tolerates stalls; rdma's RC endpoints recover
drops natively), with the lifecycle sanitizer auditing the whole run.
"""

import pytest

from repro import sanitize
from repro.apps.kneighbor import kneighbor
from repro.faults import FaultConfig
from repro.hardware.config import MachineConfig
from repro.lrts.ugni_layer import UgniLayerConfig
from repro.units import KB

CASES = {
    "ugni": dict(
        config=MachineConfig(sanitize=True),
        layer_config=UgniLayerConfig(reliability=True, max_retries=30),
        faults=FaultConfig(smsg_drop_rate=0.05, smsg_stall_rate=0.05,
                           rdma_error_rate=0.05),
    ),
    "mpi": dict(
        config=MachineConfig(sanitize=True),
        layer_config=None,
        faults=FaultConfig(smsg_stall_rate=0.10),
    ),
    "rdma": dict(
        config=MachineConfig(topology="dragonfly", sanitize=True),
        layer_config=None,
        faults=FaultConfig(smsg_drop_rate=0.05, smsg_stall_rate=0.05,
                           rdma_error_rate=0.05),
    ),
}


@pytest.mark.parametrize("layer", sorted(CASES))
def test_chaos_with_sanitizer(layer):
    case = CASES[layer]
    sanitize.clear_registry()
    try:
        clean = kneighbor(16 * KB, layer=layer, config=case["config"],
                          layer_config=case["layer_config"], seed=11)
        faulty = kneighbor(16 * KB, layer=layer, config=case["config"],
                           layer_config=case["layer_config"], seed=11,
                           faults=case["faults"])
        # exactly-once: the application saw the fault-free delivery count
        assert faulty.stats["delivered"] == clean.stats["delivered"]
        # faults cost time, never save it
        assert faulty.iteration_time >= clean.iteration_time
        sanitize.assert_clean(f"{layer} chaos kneighbor")
    finally:
        sanitize.clear_registry()
