"""End-to-end recovery: crash schedules in, bit-identical results out.

Three layers of assurance:

* a Hypothesis round-trip property — checkpoint/restore across arbitrary
  PE resizes (up and down) preserves element state, reduction progress,
  and sanitizer cleanliness;
* chaos recovery — the :class:`~repro.resilience.ResilienceManager`
  drives the reference app through injected :class:`NodeCrash` events on
  every LRTS layer, and the final digest must equal a crash-free run's;
* mechanism tests — spares, repeated crashes, the give-up path,
  post-completion crashes, pending-schedule re-arming, and the
  observability surface (flight dump on crash, recovery counters).
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import sanitize
from repro.charm import Chare, Charm
from repro.charm.checkpoint import restore_into, take_checkpoint
from repro.errors import SimulationError
from repro.faults import NodeCrash, fault_report
from repro.hardware.config import MachineConfig, tiny as tiny_config
from repro.lrts.factory import make_runtime
from repro.resilience import PhasedSum, RecoveryPolicy, ResilienceManager
from repro.units import us

_SETTINGS = dict(deadline=None, max_examples=10,
                 suppress_health_check=[HealthCheck.too_slow])


def _machine_config(layer: str, **kw) -> MachineConfig:
    base = tiny_config(cores_per_node=1)
    if layer == "rdma":
        kw.setdefault("topology", "dragonfly")
    return dataclasses.replace(base, **kw) if kw else base


def _run_phased(layer: str, schedule=(), *, n_nodes=4, seed=7,
                policy=None, config_kw=None) -> tuple:
    """One managed PhasedSum run; returns (report, manager)."""
    app = PhasedSum(n_elements=12, rounds=8)
    mgr = ResilienceManager(
        app, n_nodes=n_nodes, layer=layer,
        config=_machine_config(layer, **(config_kw or {})), seed=seed,
        policy=policy or RecoveryPolicy(checkpoint_interval=50 * us),
        crash_schedule=schedule)
    return mgr.run(), mgr


# --------------------------------------------------------------------- #
# Round-trip property: resize-anywhere checkpoint/restore
# --------------------------------------------------------------------- #
class RoundWorker(Chare):
    """Reduction-per-phase worker driven one round at a time."""

    def __init__(self):
        self.total = 0
        self.log = []  # root only

    def step(self, r):
        self.charge(1 * us)
        self.total = (self.total + (int(self.thisIndex) + 1) * (r + 1) * 31) % 1009
        self.contribute(self.total, "sum", self.thisProxy[0].collect)

    def collect(self, value):
        self.log.append(int(value))


def _drive_rounds(charm, proxy, start, n):
    for r in range(start, start + n):
        charm.start(lambda pe, r=r: proxy.step(r))
        charm.run()


def _array_state(charm, name):
    coll = charm.collection(name)
    return sorted(
        (str(idx), elem.total, elem._red_round)
        for _pe, elems in coll.local.items()
        for idx, elem in elems.items())


class TestRoundTripProperty:
    @given(n_before=st.integers(1, 6), n_after=st.integers(1, 6),
           n_elems=st.integers(1, 10), pre=st.integers(0, 3),
           post=st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_resize_round_trip(self, n_before, n_after, n_elems, pre, post):
        sanitize.clear_registry()
        try:
            cfg = dataclasses.replace(tiny_config(), sanitize=True)

            def build(n_pes):
                conv, _ = make_runtime(n_pes=n_pes, layer="ugni", config=cfg)
                return Charm(conv)

            # reference: every round uninterrupted on the original size
            ref = build(n_before)
            ref_arr = ref.create_array(RoundWorker, n_elems, name="w")
            _drive_rounds(ref, ref_arr, 0, pre + post)

            # round-trip: pre rounds, checkpoint, restore resized, post
            charm1 = build(n_before)
            arr1 = charm1.create_array(RoundWorker, n_elems, name="w")
            _drive_rounds(charm1, arr1, 0, pre)
            ckpt = take_checkpoint(charm1)

            charm2 = build(n_after)
            arr2 = restore_into(charm2, ckpt)["w"]
            # reduction progress survives the resize verbatim
            for _idx, elem in charm2.iter_elements("w"):
                assert elem._red_round == pre
            _drive_rounds(charm2, arr2, pre, post)

            # integer arithmetic: state identical regardless of placement
            assert _array_state(charm2, "w") == _array_state(ref, "w")
            root2 = dict(charm2.iter_elements("w"))[0]
            root_ref = dict(ref.iter_elements("w"))[0]
            assert root2.log == root_ref.log
            sanitize.assert_clean("resize round trip")
        finally:
            sanitize.clear_registry()


# --------------------------------------------------------------------- #
# Chaos recovery on every LRTS layer
# --------------------------------------------------------------------- #
class TestCrashRecovery:
    @pytest.mark.parametrize("layer", ["ugni", "mpi", "rdma"])
    def test_crash_recovery_matches_crash_free_run(self, layer):
        clean, _ = _run_phased(layer)
        crashed, mgr = _run_phased(
            layer, [NodeCrash(at=120 * us, node_id=2)])
        assert crashed.result["digest"] == clean.result["digest"]
        assert crashed.crashes == 1 and crashed.restarts == 1
        assert crashed.n_pes_final == 3  # shrank onto the survivors
        assert crashed.lost_work_s > 0
        # recovery costs simulated time, never saves it
        assert crashed.sim_time_s > clean.sim_time_s

    @pytest.mark.parametrize("layer", ["ugni", "mpi", "rdma"])
    def test_recovery_is_deterministic(self, layer):
        schedule = [NodeCrash(at=120 * us, node_id=2)]
        a, _ = _run_phased(layer, schedule)
        b, _ = _run_phased(layer, schedule)
        assert a.result == b.result
        assert a.sim_time_s == b.sim_time_s
        assert a.crash_times == b.crash_times

    def test_recovery_survives_repeated_crashes(self):
        clean, _ = _run_phased("ugni")
        crashed, _ = _run_phased("ugni", [
            NodeCrash(at=120 * us, node_id=2),
            NodeCrash(at=300 * us, node_id=1),
        ])
        assert crashed.result["digest"] == clean.result["digest"]
        assert crashed.restarts == 2
        assert crashed.n_pes_final == 2

    def test_spare_nodes_keep_the_job_at_full_size(self):
        clean, _ = _run_phased("ugni")
        crashed, _ = _run_phased(
            "ugni", [NodeCrash(at=120 * us, node_id=2)],
            policy=RecoveryPolicy(checkpoint_interval=50 * us, spare_nodes=2))
        assert crashed.result["digest"] == clean.result["digest"]
        assert crashed.n_pes_final == 4

    def test_crash_in_restart_window_lands_after_resume(self):
        # two crashes closer together than the restart cost: the second
        # is clamped to the resume time, not dropped and not rewound
        clean, _ = _run_phased("ugni")
        crashed, _ = _run_phased("ugni", [
            NodeCrash(at=120 * us, node_id=2),
            NodeCrash(at=121 * us, node_id=1),
        ])
        assert crashed.result["digest"] == clean.result["digest"]
        assert crashed.restarts == 2
        assert crashed.crash_times[1] >= crashed.crash_times[0]

    def test_gives_up_when_crashes_outrun_recovery(self):
        schedule = [NodeCrash(at=(100 + i) * us, node_id=i % 3)
                    for i in range(6)]
        app = PhasedSum(n_elements=12, rounds=8)
        mgr = ResilienceManager(
            app, n_nodes=8, layer="ugni", config=_machine_config("ugni"),
            seed=7, policy=RecoveryPolicy(checkpoint_interval=50 * us,
                                          max_restarts=2),
            crash_schedule=schedule)
        with pytest.raises(SimulationError, match="restarts"):
            mgr.run()

    def test_post_completion_crash_is_ignored(self):
        clean, _ = _run_phased("ugni")
        late = clean.sim_time_s + 100 * us
        crashed, mgr = _run_phased(
            "ugni", [NodeCrash(at=late, node_id=1)])
        assert crashed.result["digest"] == clean.result["digest"]
        assert crashed.restarts == 0

    @given(seed=st.integers(0, 2**31 - 1),
           crash_t=st.integers(20, 400), node_id=st.integers(0, 3))
    @settings(deadline=None, max_examples=8,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_single_crash_recovers_bit_identically(self, seed, crash_t,
                                                       node_id):
        clean, _ = _run_phased("ugni", seed=seed)
        crashed, _ = _run_phased(
            "ugni", [NodeCrash(at=crash_t * us, node_id=node_id)], seed=seed)
        assert crashed.result["digest"] == clean.result["digest"]

    def test_recovery_is_sanitizer_clean_across_restarts(self):
        sanitize.clear_registry()
        try:
            rep, _ = _run_phased(
                "ugni", [NodeCrash(at=120 * us, node_id=2),
                         NodeCrash(at=300 * us, node_id=1)],
                config_kw={"sanitize": True})
            # both the dead incarnations and the survivor must be clean:
            # restart may not leak a registration, block, or credit
            assert len(sanitize.active_sanitizers()) == 3
            sanitize.assert_clean("recovery across restarts")
            assert rep.restarts == 2
        finally:
            sanitize.clear_registry()


# --------------------------------------------------------------------- #
# Schedule re-arming mechanics
# --------------------------------------------------------------------- #
class TestScheduleHandoff:
    def test_pending_events_snapshot_excludes_fired(self):
        sched = [NodeCrash(at=100 * us, node_id=1),
                 NodeCrash(at=500 * us, node_id=2)]
        conv, _ = make_runtime(n_pes=4, layer="ugni",
                               config=_machine_config("ugni"),
                               fault_schedule=sched)
        inj = conv.machine.faults
        assert len(inj.pending_events()) == 2
        conv.run(until=200 * us)
        assert [ev.node_id for ev in inj.pending_events()] == [2]
        inj.disarm()
        assert inj.pending_events() == ()

    def test_fault_report_folds_manager_counters(self):
        _rep, mgr = _run_phased("ugni", [NodeCrash(at=120 * us, node_id=2)])
        folded = fault_report(resilience=mgr)
        assert folded["recovery"]["restart"] == 1
        assert folded["recovery"]["crash_detected"] == 1
        assert folded["recovery"]["checkpoint"] == mgr.checkpoints


# --------------------------------------------------------------------- #
# Observability surface
# --------------------------------------------------------------------- #
class TestRecoveryObservability:
    def test_crash_dumps_flight_and_counts_recovery_events(self):
        from repro import observe

        observe.clear_registry()
        try:
            rep, mgr = _run_phased(
                "ugni", [NodeCrash(at=120 * us, node_id=2)],
                config_kw={"observe": True})
            assert rep.restarts == 1
            # the machine that died: its observer holds the postmortem
            observers = observe.active_observers()
            assert len(observers) == 2
            dead_obs, live_obs = observers
            assert any(d.reason == "fault:node_crash"
                       for d in dead_obs.flight.dumps)
            snap = live_obs.metrics.snapshot()
            assert snap.get("counter/recovery/restart") == 1
            # post-restart checkpoints are counted on the new machine
            assert snap.get("counter/recovery/checkpoint", 0) >= 1
        finally:
            observe.clear_registry()
