"""Fig. 1 - ping-pong latency across software layers (uGNI / MPI / MPI-based Charm++).

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig1 = exhibit_test("fig1")
