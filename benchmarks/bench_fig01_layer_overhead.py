"""Fig. 1 - ping-pong latency across software layers (uGNI / MPI / MPI-based Charm++).

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig1(benchmark):
    run_and_check(benchmark, "fig1")
