"""Shared machinery for the paper-reproduction benchmarks.

Every ``bench_*.py`` regenerates one paper exhibit; the per-file content
is exactly (docstring, experiment id), so each module is two lines::

    from _harness import exhibit_test

    test_fig9a = exhibit_test("fig9a", "Fig. 9(a) - five-way latency")

:func:`exhibit_test` manufactures the pytest-benchmark test function the
old copies spelled out by hand; :func:`run_and_check` is the underlying
run-render-assert step, still importable directly for ad-hoc use.
"""

from __future__ import annotations

import pathlib

from repro.bench.figures import run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_check(benchmark, exp_id: str) -> None:
    """Run one experiment under the benchmark fixture and verify claims."""
    result = benchmark.pedantic(run_experiment, args=(exp_id,),
                                rounds=1, iterations=1)
    rendered = result.render()
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(rendered)
    failed = result.failed_claims()
    assert not failed, (
        f"{exp_id}: paper-shape claims failed:\n"
        + "\n".join(f"  - {c.text} ({c.detail})" for c in failed)
    )


def exhibit_test(exp_id: str, doc: str = ""):
    """Build the ``test_<exp_id>`` function for one exhibit module."""

    def test(benchmark):
        run_and_check(benchmark, exp_id)

    test.__name__ = f"test_{exp_id}"
    test.__doc__ = doc or f"Regenerate {exp_id} and assert the paper's claims."
    return test
