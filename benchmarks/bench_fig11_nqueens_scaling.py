"""Fig. 11 - N-Queens strong-scaling speedup.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig11 = exhibit_test("fig11")
