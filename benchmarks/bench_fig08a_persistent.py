"""Fig. 8(a) - persistent-message latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig8a(benchmark):
    run_and_check(benchmark, "fig8a")
