"""Fig. 8(a) - persistent-message latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig8a = exhibit_test("fig8a")
