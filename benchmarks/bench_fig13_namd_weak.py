"""Fig. 13 - NAMD weak scaling (IAPP/DHFR/ApoA1).

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig13(benchmark):
    run_and_check(benchmark, "fig13")
