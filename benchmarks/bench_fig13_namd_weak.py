"""Fig. 13 - NAMD weak scaling (IAPP/DHFR/ApoA1).

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig13 = exhibit_test("fig13")
