"""Fig. 8(c) - intra-node pxshm single/double copy vs MPI.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig8c = exhibit_test("fig8c")
