"""Fig. 8(c) - intra-node pxshm single/double copy vs MPI.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig8c(benchmark):
    run_and_check(benchmark, "fig8c")
