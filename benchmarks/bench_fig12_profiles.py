"""Fig. 12 - N-Queens utilization time profiles.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig12 = exhibit_test("fig12")
