"""Fig. 12 - N-Queens utilization time profiles.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig12(benchmark):
    run_and_check(benchmark, "fig12")
