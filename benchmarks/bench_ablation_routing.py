"""Ablation - adaptive vs dimension-ordered routing.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_ablation_routing = exhibit_test("ablation_routing")
