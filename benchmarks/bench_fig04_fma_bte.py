"""Fig. 4 - FMA vs BTE PUT/GET latency and the hardware crossover.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig4(benchmark):
    run_and_check(benchmark, "fig4")
