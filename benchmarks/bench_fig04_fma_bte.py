"""Fig. 4 - FMA vs BTE PUT/GET latency and the hardware crossover.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig4 = exhibit_test("fig4")
