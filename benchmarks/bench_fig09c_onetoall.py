"""Fig. 9(c) - one-to-all latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig9c(benchmark):
    run_and_check(benchmark, "fig9c")
