"""Fig. 9(c) - one-to-all latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig9c = exhibit_test("fig9c")
