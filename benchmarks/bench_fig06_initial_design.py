"""Fig. 6 - the pre-optimization uGNI machine layer vs MPI-based Charm++.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig6(benchmark):
    run_and_check(benchmark, "fig6")
