"""Fig. 6 - the pre-optimization uGNI machine layer vs MPI-based Charm++.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig6 = exhibit_test("fig6")
