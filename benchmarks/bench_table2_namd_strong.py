"""Table II - ApoA1 strong scaling ms/step.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_table2 = exhibit_test("table2")
