"""Table I - best (cores, time) per N-Queens board.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_table1 = exhibit_test("table1")
