"""Table I - best (cores, time) per N-Queens board.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_table1(benchmark):
    run_and_check(benchmark, "table1")
