"""Ablation - GET- vs PUT-based rendezvous.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_ablation_put_get = exhibit_test("ablation_put_get")
