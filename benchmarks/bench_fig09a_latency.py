"""Fig. 9(a) - five-way one-way latency comparison.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig9a(benchmark):
    run_and_check(benchmark, "fig9a")
