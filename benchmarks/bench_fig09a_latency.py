"""Fig. 9(a) - five-way one-way latency comparison.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig9a = exhibit_test("fig9a")
