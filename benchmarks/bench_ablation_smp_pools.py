"""Ablation - per-PE vs node-shared pools.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_ablation_smp_pools = exhibit_test("ablation_smp_pools")
