"""Ablation - SMSG vs MSGQ transport.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_ablation_msgq = exhibit_test("ablation_msgq")
