"""Fig. 8(b) - memory-pool latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig8b(benchmark):
    run_and_check(benchmark, "fig8b")
