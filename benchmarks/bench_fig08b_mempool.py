"""Fig. 8(b) - memory-pool latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig8b = exhibit_test("fig8b")
