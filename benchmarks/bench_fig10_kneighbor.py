"""Fig. 10 - kNeighbor iteration latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig10(benchmark):
    run_and_check(benchmark, "fig10")
