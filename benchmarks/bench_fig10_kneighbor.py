"""Fig. 10 - kNeighbor iteration latency.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig10 = exhibit_test("fig10")
