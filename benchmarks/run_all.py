#!/usr/bin/env python
"""Continuous benchmark-regression harness.

Runs the headline perf-sensitive workloads — fig-9 ping-pong
(latency + bandwidth), fig-10 kNeighbor, and a pure engine events/sec
microbenchmark — and emits a ``BENCH_<label>.json`` with:

* **wall-clock** per benchmark: median of ``--rounds`` CPU-time
  measurements (``time.process_time``, immune to other processes), plus
  a machine **calibration** factor (a fixed pure-Python spin loop) so
  numbers recorded on one machine can be compared on another as the
  dimensionless ``normalized`` cost = wall / calibration;
* **simulated metrics** and their sha256 **checksum**: the simulation is
  deterministic, so the checksum must be byte-identical across rounds,
  machines, and optimization PRs — determinism is verified alongside
  speed, every round, and any drift fails the run.

``--check BASELINE`` compares against a committed baseline JSON:
checksums must match exactly and each benchmark's normalized cost must
not regress by more than ``--tolerance`` (default 20%).  Exit status is
non-zero on any regression or checksum drift, which is what the CI
perf-smoke job keys off.  A benchmark present in the current run but
absent from the baseline fails with a message telling you to
``--rebase`` (rewrite the baseline in place from this run).

``--jobs N`` (or ``REPRO_BENCH_JOBS=N``) fans the timed rounds out
across worker processes via :mod:`repro.parallel.sweep`.  Each
(benchmark, round) pair is an independent task; results merge in
submission order, so the simulated metrics and their checksums are
byte-identical to ``--jobs 1`` — only the wall-clock shrinks.  Each
worker warms a benchmark up once before timing it, mirroring the
sequential warm-up round.

Reports always land in the ``benchmarks/`` directory next to this
script, regardless of the working directory — ``--out`` takes a file
name, not a path.

Usage::

    python benchmarks/run_all.py --label local
    python benchmarks/run_all.py --jobs 4 --check benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.collectives_app import run_alltoallv
from repro.apps.gpu_apps import gpu_kneighbor, gpu_pingpong
from repro.apps.kneighbor import kneighbor
from repro.apps.pingpong import charm_pingpong
from repro.hardware.config import MachineConfig
from repro.parallel import ShardedEngine, SweepPoint, resolve_jobs, run_sweep
from repro.sim import Engine
from repro.units import KB, MB

#: bump when the benchmark set or the JSON layout changes incompatibly
SCHEMA = "repro-bench-v1"

#: reports always land here, next to this script
BENCH_DIR = pathlib.Path(__file__).resolve().parent


# --------------------------------------------------------------------- #
# the benchmarks: each returns {metric_name: simulated_value}
# --------------------------------------------------------------------- #
def bench_pingpong() -> dict[str, float]:
    """Fig-9 ping-pong: small/rendezvous latency and large bandwidth."""
    small = charm_pingpong(64, layer="ugni", iters=400)
    rndv = charm_pingpong(64 * KB, layer="ugni", iters=400)
    big = charm_pingpong(1 * MB, layer="ugni", iters=200)
    return {
        "latency_64B_s": small.one_way_latency,
        "latency_64KB_s": rndv.one_way_latency,
        "bandwidth_1MB_Bps": big.bandwidth,
    }


def bench_kneighbor() -> dict[str, float]:
    """Fig-10 kNeighbor iteration time at an SMSG and a rendezvous size."""
    sm = kneighbor(2 * KB, layer="ugni", iters=60)
    lg = kneighbor(256 * KB, layer="ugni", iters=60)
    return {
        "iteration_2KB_s": sm.iteration_time,
        "iteration_256KB_s": lg.iteration_time,
    }


def bench_engine_events(n: int = 200_000) -> dict[str, float]:
    """Raw event-kernel throughput: schedule/execute plus the
    armed-and-cancelled timeout pattern every reliable SMSG produces."""
    eng = Engine()
    count = [0]

    def tick() -> None:
        count[0] += 1
        eng.call_after(1e-6, _noop).cancel()  # timer churn (pool + compaction)
        if count[0] < n:
            eng.call_after(1e-9, tick)

    eng.call_after(1e-9, tick)
    eng.run()
    return {
        "events_executed": float(eng.events_executed),
        "final_now_s": eng.now,
        "ticks": float(n),
    }


def _noop() -> None:
    pass


def _cancel_all(handles: list) -> None:
    for h in handles:
        h.cancel()


def bench_engine_events_mixed(waves: int = 300, width: int = 256) -> dict[str, float]:
    """Mixed engine kernel: batch-armed timer waves plus cancel churn.

    Each wave batch-arms ``width`` homogeneous timers through
    ``call_after_batch``, then arms ``width`` individually cancellable
    timers and cancels two thirds of them — one third immediately (the
    staged-tail / freshly-armed fast path) and one third from a later
    event after they have been promoted into the heap (lazy cancellation,
    which drives compaction).  This keeps the slab paths the plain
    ``engine_events`` loop never touches — ``post_many``, handle cancel,
    compaction — on the perf gate.
    """
    eng = Engine()
    state = [0]

    def batch_tick() -> None:
        state[0] += 1

    def wave() -> None:
        eng.call_after_batch([1e-7 + i * 1e-9 for i in range(width)],
                             batch_tick)
        handles = [eng.call_after(2e-7 + i * 1e-9, _noop)
                   for i in range(width)]
        for i in range(0, width, 3):
            handles[i].cancel()
        eng.call_after(1.75e-7, _cancel_all,
                       [handles[i] for i in range(1, width, 3)])
        wave.count += 1
        if wave.count < waves:
            eng.call_after(3e-7, wave)

    wave.count = 0
    eng.call_after(1e-9, wave)
    eng.run()
    return {
        "events_executed": float(eng.events_executed),
        "final_now_s": eng.now,
        "batch_fired": float(state[0]),
        "waves": float(wave.count),
    }


def bench_sharded_kneighbor() -> dict[str, float]:
    """Fig-10 kNeighbor on the sharded engine, diffed against sequential.

    Runs the same config on the sequential engine and a 3-shard
    :class:`ShardedEngine` and requires bit-identical metrics — the
    determinism contract is re-verified on every benchmark run, not just
    in the unit suite.  The emitted metrics fold in the shard counters so
    a change in windowing behaviour shows up as checksum drift.
    """
    seq = kneighbor(2 * KB, layer="ugni", iters=60)
    eng = ShardedEngine(n_shards=3)
    shd = kneighbor(2 * KB, layer="ugni", iters=60, engine=eng)
    if repr(seq.iteration_time) != repr(shd.iteration_time):
        raise RuntimeError(
            f"sharded engine diverged from sequential: "
            f"{seq.iteration_time!r} vs {shd.iteration_time!r}")
    stats = eng.shard_stats()
    if stats["sequential"]:
        raise RuntimeError(
            f"sharded engine fell back to sequential execution "
            f"({stats['fallback_reason']}) — the benchmark measured nothing")
    return {
        "iteration_2KB_s": shd.iteration_time,
        "windows": float(stats["windows"]),
        "exchanged_events": float(stats["exchanged_events"]),
        "lookahead_violations": float(stats["lookahead_violations"]),
    }


def bench_crosslayer() -> dict:
    """Cross-fabric comparison: the same workloads on ugni, mpi, and rdma.

    Ping-pong latency/bandwidth plus the persistent alltoallv on each
    registered layer (rdma runs on a dragonfly machine).  The alltoallv
    content digest must be bit-identical across layers — swapping the
    fabric may only change timing, never results — and is folded into the
    metrics so cross-layer drift shows up as checksum drift.
    """
    fabrics = {
        "ugni": None,
        "mpi": None,
        "rdma": MachineConfig(topology="dragonfly"),
    }
    out: dict = {}
    digests: dict[str, str] = {}
    for layer, cfg in fabrics.items():
        small = charm_pingpong(64, layer=layer, config=cfg, iters=200)
        big = charm_pingpong(512 * KB, layer=layer, config=cfg, iters=100)
        a2a = run_alltoallv(n_pes=8, layer=layer, algorithm="persistent",
                            config=cfg)
        out[f"{layer}_latency_64B_s"] = small.one_way_latency
        out[f"{layer}_bandwidth_512KB_Bps"] = big.bandwidth
        out[f"{layer}_alltoallv_8pe_s"] = a2a.time
        digests[layer] = a2a.digest
    if len(set(digests.values())) != 1:
        raise RuntimeError(
            f"alltoallv results differ across machine layers: {digests}")
    out["alltoallv_digest"] = digests["ugni"]
    return out


def bench_recovery() -> dict:
    """Time-to-recover: the resilience loop under a crash schedule.

    Runs the reference phased app (``repro.resilience``) crash-free and
    under a two-crash :class:`NodeCrash` schedule.  The recovered run's
    result digest must be bit-identical to the crash-free one — that
    digest is folded into the metrics, so any placement- or
    replay-dependence in the recovery path shows up as checksum drift.
    The simulated costs (lost work, restart overhead, checkpoint count)
    are metrics too: a change to the checkpoint cadence or restart model
    is a deliberate, visible baseline change.
    """
    from repro.faults import NodeCrash
    from repro.hardware.config import tiny
    from repro.resilience import PhasedSum, RecoveryPolicy, ResilienceManager

    def run(schedule):
        app = PhasedSum(n_elements=32, rounds=40)
        mgr = ResilienceManager(
            app, n_nodes=8, layer="ugni", config=tiny(cores_per_node=1),
            seed=11, policy=RecoveryPolicy(checkpoint_interval=60e-6),
            crash_schedule=schedule)
        return mgr.run()

    clean = run([])
    crashed = run([NodeCrash(at=150e-6, node_id=3),
                   NodeCrash(at=700e-6, node_id=1),
                   NodeCrash(at=1500e-6, node_id=4)])
    if crashed.result["digest"] != clean.result["digest"]:
        raise RuntimeError(
            f"recovered run diverged from crash-free run: "
            f"{crashed.result['digest']} vs {clean.result['digest']}")
    return {
        "result_digest": crashed.result["digest"],
        "sim_time_clean_s": clean.sim_time_s,
        "sim_time_crashed_s": crashed.sim_time_s,
        "lost_work_s": crashed.lost_work_s,
        "restart_cost_s": crashed.restart_cost_s,
        "checkpoints": float(crashed.checkpoints),
        "restarts": float(crashed.restarts),
        "n_pes_final": float(crashed.n_pes_final),
    }


def bench_gpu_crossover() -> dict:
    """Choi-style staged-vs-GPUDirect latency sweep across the crossover.

    Runs the GPU ping-pong at sizes straddling ``gpu_staged_crossover``
    on every transport and enforces the protocol-selection contract:
    staged must win below the crossover, direct above, ``auto`` must
    match the winner exactly, and the receive-side content digest must
    be bit-identical across transports — the protocol choice may change
    timing only.  Any violation raises, failing the benchmark run.
    """
    crossover = MachineConfig().gpu_staged_crossover
    sizes = {"2KB": 2 * KB, "8KB": 8 * KB,
             "128KB": 128 * KB, "512KB": 512 * KB}
    out: dict = {}
    for tag, size in sizes.items():
        lat: dict[str, float] = {}
        digests: dict[str, str] = {}
        for transport in ("staged", "direct", "auto"):
            r = gpu_pingpong(size, layer="ugni", transport=transport,
                             iters=20)
            lat[transport] = r.one_way_latency
            digests[transport] = r.digest
        if len(set(digests.values())) != 1:
            raise RuntimeError(
                f"gpu ping-pong results differ across transports at "
                f"{tag}: {digests}")
        winner = "staged" if lat["staged"] < lat["direct"] else "direct"
        expected = "staged" if size < crossover else "direct"
        if winner != expected:
            raise RuntimeError(
                f"gpu crossover inverted at {tag}: {expected} should win "
                f"below/above {crossover}B but timings say {winner} "
                f"({lat})")
        if repr(lat["auto"]) != repr(lat[winner]):
            raise RuntimeError(
                f"auto transport did not match the winning protocol at "
                f"{tag}: auto={lat['auto']!r} {winner}={lat[winner]!r}")
        out[f"staged_{tag}_s"] = lat["staged"]
        out[f"direct_{tag}_s"] = lat["direct"]
        out[f"digest_{tag}"] = digests["auto"]
    return out


def bench_gpu_kneighbor() -> dict:
    """GPU kNeighbor: device payloads with kernel/communication overlap.

    The staged run's content digest must match the auto run's — same
    transport-invariance contract as the crossover sweep, exercised on
    a many-to-many pattern with the kernel-occupancy model engaged.
    """
    sm = gpu_kneighbor(2 * KB, layer="ugni", transport="auto", iters=30)
    lg = gpu_kneighbor(256 * KB, layer="ugni", transport="auto", iters=30)
    staged = gpu_kneighbor(256 * KB, layer="ugni", transport="staged",
                           iters=30)
    if staged.digest != lg.digest:
        raise RuntimeError(
            f"gpu kNeighbor results differ across transports: "
            f"staged {staged.digest} vs auto {lg.digest}")
    return {
        "iteration_2KB_s": sm.iteration_time,
        "iteration_256KB_s": lg.iteration_time,
        "iteration_256KB_staged_s": staged.iteration_time,
        "result_digest": lg.digest,
    }


BENCHMARKS = {
    "pingpong": bench_pingpong,
    "kneighbor": bench_kneighbor,
    "engine_events": bench_engine_events,
    "engine_events_mixed": bench_engine_events_mixed,
    "sharded_kneighbor": bench_sharded_kneighbor,
    "crosslayer": bench_crosslayer,
    "recovery": bench_recovery,
    "gpu_crossover": bench_gpu_crossover,
    "gpu_kneighbor": bench_gpu_kneighbor,
}

#: machine layers each benchmark exercises — what ``--layers`` filters on
#: (``engine_events`` touches no layer, so any filter deselects it)
BENCHMARK_LAYERS = {
    "pingpong": ("ugni",),
    "kneighbor": ("ugni",),
    "engine_events": (),
    "engine_events_mixed": (),
    "sharded_kneighbor": ("ugni",),
    "crosslayer": ("ugni", "mpi", "rdma"),
    "recovery": ("ugni",),
    "gpu_crossover": ("gpu",),
    "gpu_kneighbor": ("gpu",),
}


def select_benchmarks(layers: str | None) -> list[str]:
    """Resolve a ``--layers`` comma list to benchmark names (in run order)."""
    if not layers:
        return list(BENCHMARKS)
    wanted = {s.strip() for s in layers.split(",") if s.strip()}
    known = {l for tags in BENCHMARK_LAYERS.values() for l in tags}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"--layers: unknown layer(s) {sorted(unknown)} "
            f"(available: {sorted(known)})")
    return [name for name in BENCHMARKS
            if wanted & set(BENCHMARK_LAYERS[name])]


# --------------------------------------------------------------------- #
# measurement machinery
# --------------------------------------------------------------------- #
def checksum(sim: dict[str, float]) -> str:
    """sha256 over the full-precision reprs, order-independent."""
    blob = ";".join(f"{k}={v!r}" for k, v in sorted(sim.items()))
    return "sha256:" + hashlib.sha256(blob.encode()).hexdigest()


def calibrate(spins: int = 2_000_000) -> float:
    """CPU seconds for a fixed pure-Python loop — the machine-speed unit."""
    t0 = time.process_time()
    acc = 0
    for i in range(spins):
        acc += i & 7
    assert acc >= 0
    return time.process_time() - t0


#: per-process warm-up memo — forked workers each carry their own copy,
#: so every process warms a benchmark exactly once before timing it
_WARMED: set = set()


def _measure_round(name: str) -> dict:
    """One timed round of one benchmark — the parallel work unit.

    Under ``--sanitize`` / ``REPRO_SANITIZE=1`` every machine the round
    builds carries a lifecycle sanitizer; this runs in each worker
    process, so the audit also covers ``--jobs N`` fan-out.

    Under ``--observe`` / ``REPRO_OBSERVE=1`` every machine also carries
    an observer; the round returns the merged metrics snapshot and its
    sha256 digest, which must be identical across rounds, ``--jobs``
    fan-out, and sequential-vs-sharded execution.
    """
    from repro import observe, sanitize

    fn = BENCHMARKS[name]
    if name not in _WARMED:
        fn()  # warm-up: imports, lazy caches, allocator steady state
        _WARMED.add(name)
    sanitize.clear_registry()  # audit only the timed round below
    observing = observe.observe_requested()
    if observing:
        observe.clear_registry()  # meter only the timed round below
    t0 = time.process_time()
    sim = fn()
    wall = time.process_time() - t0
    if sanitize.sanitize_requested():
        sanitize.assert_clean(f"benchmark {name}")
        sanitize.clear_registry()
    out = {"wall_s": wall, "sim": sim, "checksum": checksum(sim)}
    if observing:
        snap = observe.collect_snapshot()
        out["metrics_digest"] = observe.metrics_digest(snapshot=snap)
        out["metrics"] = snap
        observe.clear_registry()
    return out


def _aggregate(name: str, round_results: list[dict]) -> dict:
    walls = [r["wall_s"] for r in round_results]
    sums = {r["checksum"] for r in round_results}
    if len(sums) != 1:
        raise RuntimeError(
            f"{name}: simulated metrics differed across rounds — the "
            f"simulation is no longer deterministic: {sorted(sums)}")
    sim = round_results[-1]["sim"]
    entry = {
        "wall_s": walls,
        "wall_median_s": statistics.median(walls),
        "sim": sim,
        "checksum": sums.pop(),
    }
    digests = {r["metrics_digest"] for r in round_results
               if "metrics_digest" in r}
    if len(digests) > 1:
        raise RuntimeError(
            f"{name}: observer metrics digest differed across rounds — "
            f"the metrics are no longer deterministic: {sorted(digests)}")
    if digests:
        entry["metrics_digest"] = digests.pop()
        entry["metrics"] = round_results[-1]["metrics"]
    if name in ("engine_events", "engine_events_mixed"):
        entry["events_per_s"] = sim["events_executed"] / entry["wall_median_s"]
    return entry


def run_benchmark(name: str, rounds: int) -> dict:
    """Sequential rounds of one benchmark (the ``--jobs 1`` work loop)."""
    return _aggregate(name, [_measure_round(name) for _ in range(rounds)])


def run_all(rounds: int, label: str, jobs: int | None = None,
            names: list[str] | None = None) -> dict:
    selected = list(BENCHMARKS) if names is None else list(names)
    n_jobs = resolve_jobs(jobs)
    calib = statistics.median(calibrate() for _ in range(3))
    report: dict = {
        "schema": SCHEMA,
        "label": label,
        "rounds": rounds,
        "jobs": n_jobs,
        "calibration_s": calib,
        "benchmarks": {},
    }
    # every (benchmark, round) pair is one task; run_sweep returns them
    # in submission order, so slicing by benchmark reassembles exactly
    # the sequence a --jobs 1 run produces
    points = [SweepPoint(_measure_round, (name,), label=f"{name}[{i}]")
              for name in selected for i in range(rounds)]
    print(f"[bench] {len(points)} rounds across {len(selected)} benchmarks "
          f"(jobs={n_jobs}) ...", flush=True)
    results = run_sweep(points, jobs=n_jobs)
    # a nondeterministic benchmark must not hide drift in the ones after
    # it: aggregate them all, then fail once listing every offender
    drifted: list[str] = []
    for bi, name in enumerate(selected):
        try:
            entry = _aggregate(name, results[bi * rounds:(bi + 1) * rounds])
        except RuntimeError as exc:
            drifted.append(str(exc))
            print(f"[bench] {name}: NONDETERMINISTIC", flush=True)
            continue
        entry["normalized"] = entry["wall_median_s"] / calib
        report["benchmarks"][name] = entry
        print(f"[bench] {name}: median {entry['wall_median_s']:.3f}s "
              f"(normalized {entry['normalized']:.2f}) {entry['checksum'][:23]}",
              flush=True)
    if drifted:
        raise RuntimeError(
            "simulation no longer deterministic in "
            f"{len(drifted)} benchmark(s):\n  " + "\n  ".join(drifted))
    return report


# --------------------------------------------------------------------- #
# regression check against a committed baseline
# --------------------------------------------------------------------- #
def compare(report: dict, baseline: dict, tolerance: float,
            subset: bool = False) -> list[str]:
    """Return a list of human-readable failures (empty = pass).

    ``subset`` (set by ``--layers``) tolerates baseline entries absent
    from the current run — a filtered run checks what it ran, no more.
    """
    failures = []
    if baseline.get("schema") != report["schema"]:
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} vs "
            f"current {report['schema']!r} — regenerate the baseline")
        return failures
    base_benchmarks = baseline.get("benchmarks", {})
    for name in sorted(set(base_benchmarks) | set(report["benchmarks"])):
        base = base_benchmarks.get(name)
        cur = report["benchmarks"].get(name)
        if base is None:
            failures.append(
                f"{name}: missing from baseline — run with --rebase to "
                f"record it")
            continue
        if cur is None:
            if not subset:
                failures.append(f"{name}: benchmark missing from current run")
            continue
        if cur["checksum"] != base.get("checksum"):
            failures.append(
                f"{name}: simulated-metric checksum drifted "
                f"({str(base.get('checksum'))[:23]}… -> {cur['checksum'][:23]}…) — "
                f"an optimization changed simulation results")
        base_digest = base.get("metrics_digest")
        cur_digest = cur.get("metrics_digest")
        if base_digest and cur_digest and cur_digest != base_digest:
            failures.append(
                f"{name}: observer metrics digest drifted "
                f"({base_digest[:12]}… -> {cur_digest[:12]}…) — a change "
                f"altered what the observability layer measures")
        base_norm = base.get("normalized")
        if not base_norm:
            failures.append(
                f"{name}: baseline entry has no normalized cost — "
                f"regenerate it with --rebase")
            continue
        ratio = cur["normalized"] / base_norm
        if ratio > 1.0 + tolerance:
            failures.append(
                f"{name}: {ratio:.2f}x the baseline normalized cost "
                f"(limit {1.0 + tolerance:.2f}x)")
    return failures


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--out", default=None, metavar="NAME",
                   help="report file name (default: BENCH_<label>.json); "
                        "always written into the benchmarks/ directory")
    p.add_argument("--label", default="local", help="report label")
    p.add_argument("--rounds", type=int, default=5,
                   help="timed rounds per benchmark (default: %(default)s)")
    p.add_argument("--check", metavar="BASELINE",
                   help="baseline JSON to compare against; exit 1 on "
                        ">tolerance regression or checksum drift")
    p.add_argument("--rebase", metavar="BASELINE",
                   help="write this run as the new baseline JSON")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="allowed fractional slowdown (default: %(default)s)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the timed rounds "
                        "(default: $REPRO_BENCH_JOBS or 1; 0 = all cores)")
    p.add_argument("--sanitize", action="store_true",
                   help="run every benchmark under the lifecycle sanitizer "
                        "(sets REPRO_SANITIZE=1; fails on any violation). "
                        "Timings will not be comparable to unsanitized runs.")
    p.add_argument("--observe", action="store_true",
                   help="run every benchmark under the observability layer "
                        "(sets REPRO_OBSERVE=1): the report gains a "
                        "metrics_digest per benchmark and an "
                        "OBSERVE_<label>.jsonl artifact holds the full "
                        "metrics snapshots. Simulated checksums are "
                        "unaffected; wall-clock carries the hook overhead.")
    p.add_argument("--layers", metavar="L1,L2",
                   help="only run benchmarks exercising these machine "
                        "layers (e.g. --layers rdma); --check then skips "
                        "baseline entries the filter deselected")
    args = p.parse_args(argv)

    if args.sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
    if args.observe:
        os.environ["REPRO_OBSERVE"] = "1"

    names = select_benchmarks(args.layers)
    if not names:
        raise SystemExit(f"--layers {args.layers}: no benchmarks selected")
    report = run_all(args.rounds, args.label, jobs=args.jobs, names=names)

    # full metrics snapshots go to the JSONL artifact, not the report —
    # the report (and any baseline rebased from it) keeps only the digest
    observe_rows = []
    for name, entry in report["benchmarks"].items():
        metrics = entry.pop("metrics", None)
        if metrics is not None:
            observe_rows.append({
                "benchmark": name,
                "label": args.label,
                "metrics_digest": entry["metrics_digest"],
                "metrics": metrics,
            })
    # artifacts land in benchmarks/ no matter where the harness was
    # invoked from — a bare --out NAME must not scatter reports around
    # the tree (a stray root BENCH_pr3.json is how this rule got here)
    out_name = args.out if args.out else f"BENCH_{args.label}.json"
    out_path = BENCH_DIR / pathlib.Path(out_name).name
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")
    if observe_rows:
        from repro.observe import write_metrics_jsonl
        obs_path = out_path.with_name(f"OBSERVE_{args.label}.jsonl")
        with open(obs_path, "w") as fh:
            write_metrics_jsonl(observe_rows, fh)
        print(f"[bench] wrote {obs_path}")

    if args.rebase:
        if args.layers:
            raise SystemExit(
                "--rebase with --layers would write a partial baseline; "
                "rebase from an unfiltered run")
        pathlib.Path(args.rebase).write_text(
            json.dumps(report, indent=2) + "\n")
        print(f"[bench] rebased baseline {args.rebase}")

    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        failures = compare(report, baseline, args.tolerance,
                           subset=bool(args.layers))
        if failures:
            print(f"[bench] PERF-SMOKE FAILED vs {args.check}:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print(f"[bench] perf-smoke OK vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
