"""Pytest glue for the paper-reproduction benchmarks.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.
Running::

    pytest benchmarks/ --benchmark-only

executes every experiment under pytest-benchmark (wall time of the whole
simulated experiment is what gets benchmarked), prints the regenerated
rows/series plus the paper-shape claim checklist, asserts that every claim
holds, and writes the rendered output to ``benchmarks/results/<id>.txt``.

Set ``REPRO_PAPER_SCALE=1`` for the full published sweeps (minutes).
Set ``REPRO_BENCH_JOBS=N`` to fan the figure sweeps out across worker
processes (results are byte-identical at any job count).

The run/render/assert machinery lives in ``_harness.py``; this module
re-exports :func:`run_and_check` for callers that import it from
``conftest`` and provides the ``paper_exhibit`` factory fixture.
"""

from __future__ import annotations

import pytest

from _harness import RESULTS_DIR, run_and_check  # noqa: F401  (re-export)


@pytest.fixture
def paper_exhibit(benchmark):
    """Factory fixture: ``paper_exhibit('fig9a')``."""

    def _run(exp_id: str) -> None:
        run_and_check(benchmark, exp_id)

    return _run
