"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.
Running::

    pytest benchmarks/ --benchmark-only

executes every experiment under pytest-benchmark (wall time of the whole
simulated experiment is what gets benchmarked), prints the regenerated
rows/series plus the paper-shape claim checklist, asserts that every claim
holds, and writes the rendered output to ``benchmarks/results/<id>.txt``.

Set ``REPRO_PAPER_SCALE=1`` for the full published sweeps (minutes).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.figures import run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_check(benchmark, exp_id: str) -> None:
    """Run one experiment under the benchmark fixture and verify claims."""
    result = benchmark.pedantic(run_experiment, args=(exp_id,),
                                rounds=1, iterations=1)
    rendered = result.render()
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(rendered)
    failed = result.failed_claims()
    assert not failed, (
        f"{exp_id}: paper-shape claims failed:\n"
        + "\n".join(f"  - {c.text} ({c.detail})" for c in failed)
    )


@pytest.fixture
def paper_exhibit(benchmark):
    """Factory fixture: ``paper_exhibit('fig9a')``."""

    def _run(exp_id: str) -> None:
        run_and_check(benchmark, exp_id)

    return _run
