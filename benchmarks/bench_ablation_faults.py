"""Ablation - latency/bandwidth degradation vs injected error rate.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_ablation_faults(benchmark):
    run_and_check(benchmark, "ablation_faults")
