"""Ablation - latency/bandwidth degradation vs injected error rate.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_ablation_faults = exhibit_test("ablation_faults")
