"""Fig. 9(b) - ping-pong bandwidth.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from conftest import run_and_check


def test_fig9b(benchmark):
    run_and_check(benchmark, "fig9b")
