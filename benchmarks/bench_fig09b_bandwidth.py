"""Fig. 9(b) - ping-pong bandwidth.

Regenerates the exhibit on the simulated Gemini machine and asserts the
paper's qualitative claims.  See repro.bench for details.
"""

from _harness import exhibit_test

test_fig9b = exhibit_test("fig9b")
